"""16x16 tile grid and Gaussian-to-tile binning.

Tile-based rendering (Sec. II-B): the screen is divided into 16x16
tiles; each projected Gaussian is assigned to the tiles its truncated
footprint overlaps.  Two tests are provided:

* :func:`bin_gaussians` — the conservative axis-aligned bounding-box
  test the 3DGS reference implementation uses on the GPU.
* :func:`exact_tile_intersections` — the exact ellipse-vs-tile test
  the paper's Decomposition & Binning engine performs by adapting the
  IRSS row-intersection algorithm (Sec. V-D, Fig. 12a).  It produces
  strictly fewer (tile, Gaussian) pairs, which is one source of the
  D&B engine's speedup.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import TILE_SIZE
from repro.errors import ValidationError


@dataclass(frozen=True)
class TileGrid:
    """The tile decomposition of an image.

    Attributes
    ----------
    width, height:
        Image resolution in pixels.
    tile:
        Tile edge length (16 in the paper).
    """

    width: int
    height: int
    tile: int = TILE_SIZE

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValidationError("image dimensions must be positive")
        if self.tile <= 0:
            raise ValidationError("tile size must be positive")

    @property
    def tiles_x(self) -> int:
        return (self.width + self.tile - 1) // self.tile

    @property
    def tiles_y(self) -> int:
        return (self.height + self.tile - 1) // self.tile

    @property
    def n_tiles(self) -> int:
        return self.tiles_x * self.tiles_y

    def tile_origin(self, tile_id: int) -> tuple[int, int]:
        """Pixel coordinates of a tile's top-left corner."""
        ty, tx = divmod(tile_id, self.tiles_x)
        return tx * self.tile, ty * self.tile

    def tile_bounds(self, tile_id: int) -> tuple[int, int, int, int]:
        """(x0, y0, x1, y1) pixel bounds, exclusive on the right/bottom,
        clipped to the image."""
        x0, y0 = self.tile_origin(tile_id)
        return (
            x0,
            y0,
            min(x0 + self.tile, self.width),
            min(y0 + self.tile, self.height),
        )

    def tile_shape(self, tile_id: int) -> tuple[int, int]:
        """(rows, cols) of valid pixels inside a (possibly clipped) tile."""
        x0, y0, x1, y1 = self.tile_bounds(tile_id)
        return (y1 - y0, x1 - x0)

    def traversal_order(self) -> np.ndarray:
        """Row-major tile processing order used by the tile engine.

        The Gaussian Reuse Cache's precomputed reuse distances are
        defined with respect to this order (Fig. 12a).
        """
        return np.arange(self.n_tiles, dtype=np.int64)


def tile_rects_of_footprints(
    grid: TileGrid, means2d: np.ndarray, radii: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Tile-index rectangles (inclusive tx0/ty0, exclusive tx1/ty1)
    covered by each footprint's bounding box, clipped to the grid.

    The single definition of the conservative binning rectangle; the
    scalar :func:`tile_rect_of_footprint` and the vectorized
    :func:`bin_gaussians_flat` both use it.
    """
    tx0 = np.maximum(
        np.floor((means2d[:, 0] - radii) / grid.tile).astype(np.int64), 0
    )
    ty0 = np.maximum(
        np.floor((means2d[:, 1] - radii) / grid.tile).astype(np.int64), 0
    )
    tx1 = np.minimum(
        np.floor((means2d[:, 0] + radii) / grid.tile).astype(np.int64) + 1,
        grid.tiles_x,
    )
    ty1 = np.minimum(
        np.floor((means2d[:, 1] + radii) / grid.tile).astype(np.int64) + 1,
        grid.tiles_y,
    )
    return tx0, ty0, tx1, ty1


def tile_rect_of_footprint(
    grid: TileGrid, mean2d: np.ndarray, radius: float
) -> tuple[int, int, int, int]:
    """Tile-index rectangle (inclusive tx0, ty0, exclusive tx1, ty1)
    covered by one footprint's bounding box, clipped to the grid."""
    tx0, ty0, tx1, ty1 = tile_rects_of_footprints(
        grid,
        np.asarray(mean2d, dtype=np.float64)[None, :],
        np.asarray([radius], dtype=np.float64),
    )
    return int(tx0[0]), int(ty0[0]), int(tx1[0]), int(ty1[0])


def instances_for_rects(
    grid: TileGrid,
    tx0: np.ndarray,
    ty0: np.ndarray,
    tx1: np.ndarray,
    ty1: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Flat (owner, tile) enumeration of tile-index rectangles.

    The single vectorized duplication core: every rectangle row is
    replicated once per tile it covers, with no Python-level loop.
    Returns ``(owner, tile_ids)`` int64 arrays of equal length, where
    ``owner`` indexes into the rectangle arrays; instances are ordered
    owner-major with row-major tiles inside each owner — the exact
    enumeration order of the scalar double loop.  Both the cold
    binning (:func:`bin_gaussians_flat`) and the warm-started
    streaming binner reuse this core, which is what keeps their
    outputs bit-identical.
    """
    nx = np.maximum(tx1 - tx0, 0)
    ny = np.maximum(ty1 - ty0, 0)
    counts = nx * ny
    total = int(counts.sum())
    if total == 0:
        empty = np.zeros((0,), dtype=np.int64)
        return empty, empty.copy()

    owner = np.repeat(np.arange(counts.shape[0], dtype=np.int64), counts)
    # Rank of each instance within its owner's tile rectangle.
    starts = np.concatenate([[0], np.cumsum(counts)[:-1]])
    local = np.arange(total, dtype=np.int64) - np.repeat(starts, counts)
    nx_rep = nx[owner]
    local_ty = local // nx_rep
    local_tx = local - local_ty * nx_rep
    tile_ids = (ty0[owner] + local_ty) * grid.tiles_x + tx0[owner] + local_tx
    return owner, tile_ids


def bin_gaussians_flat(
    grid: TileGrid, means2d: np.ndarray, radii: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Conservative AABB binning as flat instance arrays.

    Vectorized duplication step: every Gaussian is replicated once per
    tile its bounding box overlaps (see :func:`instances_for_rects`).
    Returns ``(tile_ids, gaussian_ids)`` int64 arrays of equal length
    (one entry per (tile, Gaussian) instance), ordered Gaussian-major
    with row-major tiles inside each Gaussian — the exact enumeration
    order of the scalar double loop it replaces.
    """
    means2d = np.asarray(means2d, dtype=np.float64)
    radii = np.asarray(radii, dtype=np.float64)
    if means2d.shape[0] != radii.shape[0]:
        raise ValidationError("means2d and radii must have matching length")
    if means2d.shape[0] == 0:
        empty = np.zeros((0,), dtype=np.int64)
        return empty, empty.copy()
    tx0, ty0, tx1, ty1 = tile_rects_of_footprints(grid, means2d, radii)
    gaussian_ids, tile_ids = instances_for_rects(grid, tx0, ty0, tx1, ty1)
    return tile_ids, gaussian_ids


def split_instances_per_tile(
    grid: TileGrid, tile_ids: np.ndarray, gaussian_ids: np.ndarray
) -> list[np.ndarray]:
    """Group flat instance arrays into one index array per tile.

    The grouping sort is stable, so instances keep their flat-array
    order inside each tile (for :func:`bin_gaussians_flat` output that
    is Gaussian input order, matching the scalar binning loop).
    """
    order = np.argsort(tile_ids, kind="stable")
    sorted_tiles = tile_ids[order]
    sorted_gaussians = gaussian_ids[order]
    counts = np.bincount(sorted_tiles, minlength=grid.n_tiles)
    bounds = np.concatenate([[0], np.cumsum(counts)])
    return [
        sorted_gaussians[bounds[t]:bounds[t + 1]] for t in range(grid.n_tiles)
    ]


def bin_gaussians(
    grid: TileGrid, means2d: np.ndarray, radii: np.ndarray
) -> list[np.ndarray]:
    """Conservative AABB binning (the 3DGS duplication step).

    Returns a list with one int64 array per tile holding the indices of
    Gaussians whose bounding box overlaps that tile, in input order.
    Built from the flat :func:`bin_gaussians_flat` construction.
    """
    tile_ids, gaussian_ids = bin_gaussians_flat(grid, means2d, radii)
    return split_instances_per_tile(grid, tile_ids, gaussian_ids)


def ellipse_intersects_rect(
    conic: np.ndarray,
    mean2d: np.ndarray,
    threshold: float,
    x0: float,
    y0: float,
    x1: float,
    y1: float,
) -> bool:
    """Exact test: does ``{P : (P-mu)^T conic (P-mu) <= Th}`` meet the
    rectangle ``[x0, x1] x [y0, y1]``?

    Three cases: the ellipse center lies inside the rectangle; the
    ellipse crosses one of the rectangle's edges; or no intersection.
    Edge crossing is detected by minimizing the quadratic form along
    each edge segment (a 1D quadratic with a closed-form minimizer).
    """
    a, b, c = float(conic[0]), float(conic[1]), float(conic[2])
    mx, my = float(mean2d[0]), float(mean2d[1])
    if x0 <= mx <= x1 and y0 <= my <= y1:
        return True

    def min_on_hseg(y: float) -> float:
        # Minimize a dx^2 + 2 b dx dy + c dy^2 for x in [x0, x1], fixed y.
        dy = y - my
        if a <= 0:
            return c * dy * dy
        x_star = mx - b * dy / a
        x_clamped = min(max(x_star, x0), x1)
        dx = x_clamped - mx
        return a * dx * dx + 2.0 * b * dx * dy + c * dy * dy

    def min_on_vseg(x: float) -> float:
        dx = x - mx
        if c <= 0:
            return a * dx * dx
        y_star = my - b * dx / c
        y_clamped = min(max(y_star, y0), y1)
        dy = y_clamped - my
        return a * dx * dx + 2.0 * b * dx * dy + c * dy * dy

    best = min(min_on_hseg(y0), min_on_hseg(y1), min_on_vseg(x0), min_on_vseg(x1))
    return best <= threshold


def exact_tile_intersections(
    grid: TileGrid,
    means2d: np.ndarray,
    radii: np.ndarray,
    conics: np.ndarray,
    thresholds: np.ndarray,
) -> list[np.ndarray]:
    """Exact ellipse-vs-tile binning (the D&B engine's test).

    Starts from the conservative AABB rectangle and keeps only tiles
    whose pixel-center extent actually meets the truncated ellipse.
    """
    per_tile: list[list[int]] = [[] for _ in range(grid.n_tiles)]
    for g in range(means2d.shape[0]):
        tx0, ty0, tx1, ty1 = tile_rect_of_footprint(grid, means2d[g], radii[g])
        for ty in range(ty0, ty1):
            row_base = ty * grid.tiles_x
            for tx in range(tx0, tx1):
                tile_id = row_base + tx
                bx0, by0, bx1, by1 = grid.tile_bounds(tile_id)
                # Pixel centers span [x0 + 0.5, x1 - 0.5].
                if ellipse_intersects_rect(
                    conics[g],
                    means2d[g],
                    float(thresholds[g]),
                    bx0 + 0.5,
                    by0 + 0.5,
                    bx1 - 0.5,
                    by1 - 0.5,
                ):
                    per_tile[tile_id].append(g)
    return [np.asarray(lst, dtype=np.int64) for lst in per_tile]


def duplication_count(per_tile: list[np.ndarray]) -> int:
    """Total number of (tile, Gaussian) instances after binning."""
    return int(sum(len(t) for t in per_tile))
