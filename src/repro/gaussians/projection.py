"""Rendering Step 1 — Preprocessing (Sec. II-B of the paper).

Projects 3D Gaussians to screen-space 2D Gaussians using the EWA
splatting formulation of Eq. 3:

    mu* = proj(W mu),    Sigma* = J W Sigma W^T J^T

where ``W`` is the world-to-camera viewing transform and ``J`` the
Jacobian of the perspective projection at the Gaussian center.  The
step also computes each Gaussian's depth, its view-dependent RGB color
from spherical harmonics, its per-Gaussian truncation threshold, and a
conservative screen-space radius used for tile binning.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import (
    COV2D_DILATION,
    NEAR_PLANE,
    DEFAULT_SETTINGS,
    RenderSettings,
)
from repro.errors import ValidationError
from repro.gaussians.camera import Camera
from repro.gaussians.gaussian import GaussianCloud
from repro.gaussians.sh import eval_sh_colors


@dataclass
class Projected2D:
    """Screen-space 2D Gaussians produced by Rendering Step 1.

    All arrays are indexed by *visible* Gaussian (camera-culled);
    ``source_index`` maps back into the original cloud.

    Attributes
    ----------
    means2d:
        (M, 2) pixel-space centers ``mu*`` (x right, y down).
    cov2d:
        (M, 2, 2) screen-space covariances ``Sigma*`` after low-pass
        dilation.
    conics:
        (M, 3) packed upper triangle (a, b, c) of ``Sigma*^{-1}`` with
        quadratic form ``a dx^2 + 2 b dx dy + c dy^2``.
    depths:
        (M,) camera-space depth of each center (byproduct of ``W mu``).
    colors:
        (M, 3) view-dependent RGB from spherical harmonics.
    opacities:
        (M,) opacity factors ``o``.
    radii:
        (M,) conservative pixel radius of the truncated footprint.
    thresholds:
        (M,) Mahalanobis-squared truncation thresholds ``Th`` such that
        a fragment contributes iff ``(P-mu*)^T Sigma*^-1 (P-mu*) <= Th``
        (equivalent to ``alpha >= alpha_min``), capped at 3 sigma.
    source_index:
        (M,) indices into the original :class:`GaussianCloud`.
    image_size:
        (width, height) of the target image.
    """

    means2d: np.ndarray
    cov2d: np.ndarray
    conics: np.ndarray
    depths: np.ndarray
    colors: np.ndarray
    opacities: np.ndarray
    radii: np.ndarray
    thresholds: np.ndarray
    source_index: np.ndarray
    image_size: tuple[int, int]

    def __len__(self) -> int:
        return self.means2d.shape[0]

    def feature_bytes(self, bytes_per_gaussian: int) -> int:
        """Total feature footprint of the visible set in bytes."""
        return len(self) * bytes_per_gaussian


def compute_jacobians(cam_points: np.ndarray, camera: Camera) -> np.ndarray:
    """Perspective-projection Jacobians ``J`` (Eq. 3), shape (N, 2, 3).

    For a camera-space point ``t = (tx, ty, tz)`` the projection is
    ``u = fx tx / tz + cx`` and ``v = fy ty / tz + cy``; ``J`` is its
    derivative with respect to ``t`` evaluated at the Gaussian center.
    """
    tx, ty, tz = cam_points[:, 0], cam_points[:, 1], cam_points[:, 2]
    inv_z = 1.0 / tz
    inv_z2 = inv_z * inv_z
    n = cam_points.shape[0]
    jac = np.zeros((n, 2, 3), dtype=np.float64)
    jac[:, 0, 0] = camera.fx * inv_z
    jac[:, 0, 2] = -camera.fx * tx * inv_z2
    jac[:, 1, 1] = camera.fy * inv_z
    jac[:, 1, 2] = -camera.fy * ty * inv_z2
    return jac


def truncation_thresholds(
    opacities: np.ndarray, settings: RenderSettings
) -> np.ndarray:
    """Per-Gaussian Mahalanobis-squared truncation thresholds ``Th``.

    A fragment's alpha is ``o * exp(-E/2)``; requiring
    ``alpha >= alpha_min`` gives ``E <= 2 ln(o / alpha_min)``.  The
    threshold is clamped to ``max_mahalanobis_sq`` (the 3-sigma bound
    the reference implementation uses for binning) and floored at zero
    for Gaussians whose peak alpha is already below the cutoff.
    """
    ratio = np.maximum(opacities / settings.alpha_min, 1e-12)
    th = 2.0 * np.log(ratio)
    return np.clip(th, 0.0, settings.max_mahalanobis_sq)


def project(
    cloud: GaussianCloud,
    camera: Camera,
    settings: RenderSettings = DEFAULT_SETTINGS,
) -> Projected2D:
    """Run Rendering Step 1 for every Gaussian in the cloud.

    Culls Gaussians behind the near plane or entirely off screen, then
    computes the screen-space Gaussian parameters, colors and
    truncation thresholds for the survivors.
    """
    n = len(cloud)
    if n == 0:
        return _empty_projection(camera)

    cam_points = camera.to_camera_space(cloud.means)
    depths = cam_points[:, 2]
    in_front = depths > NEAR_PLANE
    if not np.any(in_front):
        return _empty_projection(camera)

    idx = np.nonzero(in_front)[0]
    cam_points = cam_points[idx]
    depths = depths[idx]

    inv_z = 1.0 / depths
    means2d = np.stack(
        [
            camera.fx * cam_points[:, 0] * inv_z + camera.cx,
            camera.fy * cam_points[:, 1] * inv_z + camera.cy,
        ],
        axis=1,
    )

    # Sigma* = J W Sigma W^T J^T (Eq. 3), then EWA low-pass dilation.
    sigma = cloud.covariances()[idx]
    jac = compute_jacobians(cam_points, camera)
    jw = np.einsum("nij,jk->nik", jac, camera.rotation)
    cov2d = np.einsum("nij,njk,nlk->nil", jw, sigma, jw)
    cov2d[:, 0, 0] += COV2D_DILATION
    cov2d[:, 1, 1] += COV2D_DILATION

    det = cov2d[:, 0, 0] * cov2d[:, 1, 1] - cov2d[:, 0, 1] * cov2d[:, 1, 0]
    valid = det > 1e-12
    if not np.all(valid):
        idx = idx[valid]
        cam_points = cam_points[valid]
        depths = depths[valid]
        means2d = means2d[valid]
        cov2d = cov2d[valid]
        det = det[valid]

    inv_det = 1.0 / det
    conics = np.stack(
        [
            cov2d[:, 1, 1] * inv_det,
            -cov2d[:, 0, 1] * inv_det,
            cov2d[:, 0, 0] * inv_det,
        ],
        axis=1,
    )

    opacities = cloud.opacities[idx]
    thresholds = truncation_thresholds(opacities, settings)

    # Conservative footprint radius: sqrt(Th * lambda_max(Sigma*)).
    mid = 0.5 * (cov2d[:, 0, 0] + cov2d[:, 1, 1])
    disc = np.sqrt(np.maximum(mid * mid - det, 0.0))
    lambda_max = mid + disc
    radii = np.ceil(np.sqrt(np.maximum(thresholds, 0.0) * lambda_max))

    # Screen-bounds culling with the conservative radius.
    on_screen = (
        (means2d[:, 0] + radii > 0)
        & (means2d[:, 0] - radii < camera.width)
        & (means2d[:, 1] + radii > 0)
        & (means2d[:, 1] - radii < camera.height)
        & (radii > 0)
    )
    if not np.all(on_screen):
        idx = idx[on_screen]
        depths = depths[on_screen]
        means2d = means2d[on_screen]
        cov2d = cov2d[on_screen]
        conics = conics[on_screen]
        opacities = opacities[on_screen]
        thresholds = thresholds[on_screen]
        radii = radii[on_screen]

    dirs = camera.view_directions(cloud.means[idx])
    colors = eval_sh_colors(
        min(settings.sh_degree, cloud.sh_degree), cloud.sh[idx], dirs
    )

    return Projected2D(
        means2d=means2d,
        cov2d=cov2d,
        conics=conics,
        depths=depths,
        colors=colors,
        opacities=opacities,
        radii=radii,
        thresholds=thresholds,
        source_index=idx,
        image_size=(camera.width, camera.height),
    )


def _empty_projection(camera: Camera) -> Projected2D:
    return Projected2D(
        means2d=np.zeros((0, 2)),
        cov2d=np.zeros((0, 2, 2)),
        conics=np.zeros((0, 3)),
        depths=np.zeros((0,)),
        colors=np.zeros((0, 3)),
        opacities=np.zeros((0,)),
        radii=np.zeros((0,)),
        thresholds=np.zeros((0,)),
        source_index=np.zeros((0,), dtype=np.int64),
        image_size=(camera.width, camera.height),
    )


def mahalanobis_sq(projected: Projected2D, index: int, points: np.ndarray) -> np.ndarray:
    """Evaluate Eq. 7 for Gaussian ``index`` at pixel centers ``points``.

    This is the direct (PFS-style) 11-FLOP evaluation used as ground
    truth in tests of the IRSS transform.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValidationError(f"points must be (N, 2), got {points.shape}")
    a, b, c = projected.conics[index]
    d = points - projected.means2d[index]
    return a * d[:, 0] ** 2 + 2.0 * b * d[:, 0] * d[:, 1] + c * d[:, 1] ** 2
