"""Real spherical harmonics for view-dependent Gaussian color.

Implements the same real SH basis (up to degree 3) and color
convention as the 3DGS reference implementation: the final RGB color
is ``max(0, SH(v; sh) + 0.5)`` where ``v`` is the unit direction from
the camera to the Gaussian center (``c = f(v; sh)`` in Sec. II-A).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError

# Standard real-SH constants as used by 3DGS / Plenoxels.
SH_C0 = 0.28209479177387814
SH_C1 = 0.4886025119029199
SH_C2 = (
    1.0925484305920792,
    -1.0925484305920792,
    0.31539156525252005,
    -1.0925484305920792,
    0.5462742152960396,
)
SH_C3 = (
    -0.5900435899266435,
    2.890611442640554,
    -0.4570457994644658,
    0.3731763325901154,
    -0.4570457994644658,
    1.445305721320277,
    -0.5900435899266435,
)

MAX_SH_DEGREE = 3


def num_sh_coeffs(degree: int) -> int:
    """Number of coefficients for a full SH expansion of ``degree``."""
    if degree < 0 or degree > MAX_SH_DEGREE:
        raise ValidationError(f"SH degree must be in [0, {MAX_SH_DEGREE}], got {degree}")
    return (degree + 1) ** 2

def sh_basis(degree: int, dirs: np.ndarray) -> np.ndarray:
    """Evaluate the real SH basis functions for unit directions.

    Parameters
    ----------
    degree:
        Maximum SH degree (0 to 3 inclusive).
    dirs:
        (N, 3) array of unit view directions.

    Returns
    -------
    (N, K) array of basis values with ``K = (degree + 1)^2``.
    """
    dirs = np.asarray(dirs, dtype=np.float64)
    if dirs.ndim != 2 or dirs.shape[1] != 3:
        raise ValidationError(f"dirs must be (N, 3), got {dirs.shape}")
    n = dirs.shape[0]
    k = num_sh_coeffs(degree)
    basis = np.empty((n, k), dtype=np.float64)
    basis[:, 0] = SH_C0
    if degree >= 1:
        x, y, z = dirs[:, 0], dirs[:, 1], dirs[:, 2]
        basis[:, 1] = -SH_C1 * y
        basis[:, 2] = SH_C1 * z
        basis[:, 3] = -SH_C1 * x
    if degree >= 2:
        xx, yy, zz = x * x, y * y, z * z
        xy, yz, xz = x * y, y * z, x * z
        basis[:, 4] = SH_C2[0] * xy
        basis[:, 5] = SH_C2[1] * yz
        basis[:, 6] = SH_C2[2] * (2.0 * zz - xx - yy)
        basis[:, 7] = SH_C2[3] * xz
        basis[:, 8] = SH_C2[4] * (xx - yy)
    if degree >= 3:
        basis[:, 9] = SH_C3[0] * y * (3.0 * xx - yy)
        basis[:, 10] = SH_C3[1] * xy * z
        basis[:, 11] = SH_C3[2] * y * (4.0 * zz - xx - yy)
        basis[:, 12] = SH_C3[3] * z * (2.0 * zz - 3.0 * xx - 3.0 * yy)
        basis[:, 13] = SH_C3[4] * x * (4.0 * zz - xx - yy)
        basis[:, 14] = SH_C3[5] * z * (xx - yy)
        basis[:, 15] = SH_C3[6] * x * (xx - 3.0 * yy)
    return basis


def eval_sh_colors(degree: int, sh: np.ndarray, dirs: np.ndarray) -> np.ndarray:
    """Evaluate per-Gaussian RGB colors ``c = f(v; sh)``.

    Parameters
    ----------
    degree:
        Active degree; must not exceed the degree stored in ``sh``.
    sh:
        (N, K_stored, 3) SH coefficients.
    dirs:
        (N, 3) unit directions from camera to each Gaussian center.

    Returns
    -------
    (N, 3) array of non-negative linear RGB colors, following the 3DGS
    convention ``max(0, basis . sh + 0.5)``.
    """
    sh = np.asarray(sh, dtype=np.float64)
    if sh.ndim != 3 or sh.shape[2] != 3:
        raise ValidationError(f"sh must be (N, K, 3), got {sh.shape}")
    k = num_sh_coeffs(degree)
    if sh.shape[1] < k:
        raise ValidationError(
            f"requested degree {degree} needs {k} coefficients, cloud stores {sh.shape[1]}"
        )
    basis = sh_basis(degree, dirs)
    colors = np.einsum("nk,nkc->nc", basis, sh[:, :k, :]) + 0.5
    return np.maximum(colors, 0.0)


def direction_normalize(vectors: np.ndarray) -> np.ndarray:
    """Normalize rows of an (N, 3) array to unit length."""
    vectors = np.asarray(vectors, dtype=np.float64)
    norms = np.linalg.norm(vectors, axis=1, keepdims=True)
    norms = np.where(norms < 1e-12, 1.0, norms)
    return vectors / norms
