"""Rendering Step 2 — depth sorting and render-list construction.

After binning, each tile holds a set of overlapping Gaussians which
must be blended in near-to-far depth order (Sec. II-B).  The 3DGS
reference implementation realizes this with a single global radix sort
over 64-bit ``(tile_id << 32) | depth`` keys; the observable result is
one depth-ordered list of Gaussian indices per tile, which is exactly
what :class:`RenderLists` stores.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.gaussians.projection import Projected2D
from repro.gaussians.tiles import (
    TileGrid,
    bin_gaussians_flat,
    split_instances_per_tile,
)


@dataclass
class RenderLists:
    """Per-tile, depth-ordered Gaussian index lists.

    Attributes
    ----------
    grid:
        The tile decomposition these lists refer to.
    per_tile:
        ``per_tile[t]`` is an int64 array of indices into the
        :class:`Projected2D` arrays, sorted near-to-far.
    """

    grid: TileGrid
    per_tile: list[np.ndarray]

    def __post_init__(self) -> None:
        if len(self.per_tile) != self.grid.n_tiles:
            raise ValidationError(
                f"expected {self.grid.n_tiles} tile lists, got {len(self.per_tile)}"
            )

    @property
    def n_instances(self) -> int:
        """Total (tile, Gaussian) pairs — the 3DGS duplication count."""
        return int(sum(len(t) for t in self.per_tile))

    def instances_per_tile(self) -> np.ndarray:
        """Array of per-tile instance counts (workload histogram)."""
        return np.asarray([len(t) for t in self.per_tile], dtype=np.int64)

    def nonempty_tiles(self) -> np.ndarray:
        """Indices of tiles with at least one Gaussian."""
        return np.nonzero(self.instances_per_tile() > 0)[0]

    def gaussian_access_sequence(self) -> np.ndarray:
        """Flattened (tile-major, depth-ordered) Gaussian access trace.

        This is the exact feature-fetch sequence seen by the Gaussian
        Reuse Cache when the tile engine walks tiles in traversal
        order; reuse distances are precomputed from it (Sec. V-D).
        """
        chunks = [t for t in self.per_tile if len(t)]
        if not chunks:
            return np.zeros((0,), dtype=np.int64)
        return np.concatenate(chunks)

    def tile_boundaries(self) -> np.ndarray:
        """Prefix offsets of each tile within the flattened trace."""
        counts = self.instances_per_tile()
        return np.concatenate([[0], np.cumsum(counts)])


def sort_tile_lists(
    per_tile: list[np.ndarray], depths: np.ndarray
) -> list[np.ndarray]:
    """Sort every tile's Gaussian list by ascending depth.

    A stable sort is used so that equal-depth Gaussians retain input
    order, matching the radix-sort behavior of the reference pipeline.
    """
    sorted_lists = []
    for members in per_tile:
        if len(members) == 0:
            sorted_lists.append(members)
            continue
        order = np.argsort(depths[members], kind="stable")
        sorted_lists.append(members[order])
    return sorted_lists


def build_render_lists(
    projected: Projected2D,
    grid: TileGrid | None = None,
    per_tile: list[np.ndarray] | None = None,
) -> RenderLists:
    """Run Rendering Step 2: bin (unless given) and depth-sort.

    Parameters
    ----------
    projected:
        Output of Rendering Step 1.
    grid:
        Tile grid; defaults to the projection's image size.
    per_tile:
        Pre-binned tile lists (e.g. from the D&B engine's exact test);
        when omitted, the conservative AABB binning is used.
    """
    if grid is None:
        width, height = projected.image_size
        grid = TileGrid(width=width, height=height)
    if per_tile is None:
        # Flat vectorized path: bin to (tile, Gaussian) instance arrays,
        # then one stable lexsort over (depth, tile) keys — the numpy
        # equivalent of the reference radix sort over packed 64-bit
        # (tile_id << 32) | depth keys.
        tile_ids, gaussian_ids = bin_gaussians_flat(
            grid, projected.means2d, projected.radii
        )
        order = np.lexsort((projected.depths[gaussian_ids], tile_ids))
        per_tile = split_instances_per_tile(
            grid, tile_ids[order], gaussian_ids[order]
        )
        return RenderLists(grid=grid, per_tile=per_tile)
    return RenderLists(grid=grid, per_tile=sort_tile_lists(per_tile, projected.depths))


def sort_cost_model(n_instances: int) -> float:
    """Comparison-count proxy for the GPU radix sort over instances.

    The reference pipeline sorts ``n_instances`` 64-bit keys with a
    radix sort; the work is ``O(n)`` with a hardware-dependent
    constant.  We expose the instance count so the GPU timing model can
    apply its calibrated per-key cost (see ``repro.gpu.timing``).
    """
    if n_instances < 0:
        raise ValidationError("instance count cannot be negative")
    return float(n_instances)
