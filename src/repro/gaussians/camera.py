"""Pinhole camera model used by Rendering Step 1.

A camera stores intrinsics (focal lengths and principal point in
pixels) and extrinsics (the world-to-camera rigid transform ``W`` of
Eq. 3).  Helpers construct cameras via look-at geometry and generate
orbit paths used by the workload catalog.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.errors import ValidationError


@dataclass(frozen=True)
class Camera:
    """Pinhole camera.

    Attributes
    ----------
    width, height:
        Image resolution in pixels.
    fx, fy:
        Focal lengths in pixels.
    cx, cy:
        Principal point in pixels.
    rotation:
        (3, 3) world-to-camera rotation (the rotational part of ``W``).
    translation:
        (3,) world-to-camera translation; a world point ``p`` maps to
        camera space as ``rotation @ p + translation``.
    """

    width: int
    height: int
    fx: float
    fy: float
    cx: float
    cy: float
    rotation: np.ndarray
    translation: np.ndarray

    def __post_init__(self) -> None:
        rot = np.asarray(self.rotation, dtype=np.float64)
        trans = np.asarray(self.translation, dtype=np.float64)
        if rot.shape != (3, 3):
            raise ValidationError(f"rotation must be (3, 3), got {rot.shape}")
        if trans.shape != (3,):
            raise ValidationError(f"translation must be (3,), got {trans.shape}")
        if self.width <= 0 or self.height <= 0:
            raise ValidationError("image dimensions must be positive")
        if self.fx <= 0 or self.fy <= 0:
            raise ValidationError("focal lengths must be positive")
        if not np.allclose(rot @ rot.T, np.eye(3), atol=1e-8):
            raise ValidationError("rotation must be orthonormal")
        object.__setattr__(self, "rotation", rot)
        object.__setattr__(self, "translation", trans)

    # ------------------------------------------------------------------
    # Derived geometry
    # ------------------------------------------------------------------
    @property
    def position(self) -> np.ndarray:
        """Camera center in world coordinates."""
        return -self.rotation.T @ self.translation

    @property
    def resolution(self) -> tuple[int, int]:
        return (self.width, self.height)

    @property
    def pixel_count(self) -> int:
        return self.width * self.height

    def to_camera_space(self, points: np.ndarray) -> np.ndarray:
        """Apply the viewing transform ``W`` to (N, 3) world points."""
        points = np.asarray(points, dtype=np.float64)
        return points @ self.rotation.T + self.translation

    def view_directions(self, points: np.ndarray) -> np.ndarray:
        """Unit directions from the camera center to world points."""
        diff = np.asarray(points, dtype=np.float64) - self.position
        norms = np.linalg.norm(diff, axis=1, keepdims=True)
        norms = np.where(norms < 1e-12, 1.0, norms)
        return diff / norms

    # ------------------------------------------------------------------
    # Constructors and variations
    # ------------------------------------------------------------------
    @staticmethod
    def look_at(
        eye: np.ndarray,
        target: np.ndarray,
        up: np.ndarray = (0.0, 1.0, 0.0),
        width: int = 256,
        height: int = 256,
        fov_y_deg: float = 50.0,
    ) -> "Camera":
        """Build a camera at ``eye`` looking toward ``target``.

        The camera convention is +z forward, +x right, +y down (image
        coordinates grow right and down), matching standard computer
        vision extrinsics.
        """
        eye = np.asarray(eye, dtype=np.float64)
        target = np.asarray(target, dtype=np.float64)
        up = np.asarray(up, dtype=np.float64)
        forward = target - eye
        norm = np.linalg.norm(forward)
        if norm < 1e-12:
            raise ValidationError("eye and target coincide")
        forward = forward / norm
        right = np.cross(forward, up)
        norm = np.linalg.norm(right)
        if norm < 1e-9:
            raise ValidationError("up vector is parallel to the view direction")
        right = right / norm
        down = np.cross(forward, right)
        rotation = np.stack([right, down, forward], axis=0)
        translation = -rotation @ eye
        fy = 0.5 * height / np.tan(np.deg2rad(fov_y_deg) / 2.0)
        return Camera(
            width=width,
            height=height,
            fx=fy,
            fy=fy,
            cx=width / 2.0,
            cy=height / 2.0,
            rotation=rotation,
            translation=translation,
        )

    def with_resolution(self, width: int, height: int) -> "Camera":
        """Rescale the camera to a new resolution, keeping field of view.

        Used by the resolution-scaling experiment (Fig. 16): focal
        lengths and principal point scale with the image size.
        """
        sx = width / self.width
        sy = height / self.height
        return replace(
            self,
            width=width,
            height=height,
            fx=self.fx * sx,
            fy=self.fy * sy,
            cx=self.cx * sx,
            cy=self.cy * sy,
        )

    def dollied(self, factor: float, target: np.ndarray | None = None) -> "Camera":
        """Move the camera away from (factor > 1) or toward a target.

        Used by the camera-distance experiment (Sec. VI-F): the eye
        moves along the eye-target ray to ``factor`` times its distance.
        """
        if factor <= 0:
            raise ValidationError("dolly factor must be positive")
        target = np.zeros(3) if target is None else np.asarray(target, dtype=np.float64)
        eye = self.position
        new_eye = target + factor * (eye - target)
        translation = -self.rotation @ new_eye
        return replace(self, translation=translation)


def orbit_cameras(
    n: int,
    radius: float,
    height: float = 0.5,
    target: np.ndarray = (0.0, 0.0, 0.0),
    width: int = 256,
    height_px: int = 256,
    fov_y_deg: float = 50.0,
    phase: float = 0.0,
) -> list[Camera]:
    """Generate ``n`` cameras on a circular orbit around ``target``."""
    if n <= 0:
        raise ValidationError("orbit needs at least one camera")
    target = np.asarray(target, dtype=np.float64)
    cameras = []
    for k in range(n):
        angle = phase + 2.0 * np.pi * k / n
        eye = target + np.array(
            [radius * np.cos(angle), height, radius * np.sin(angle)]
        )
        cameras.append(
            Camera.look_at(
                eye, target, width=width, height=height_px, fov_y_deg=fov_y_deg
            )
        )
    return cameras
