"""repro — a Python reproduction of "Gaussian Blending Unit: An Edge
GPU Plug-in for Real-Time Gaussian-Based Rendering in AR/VR"
(HPCA 2025).

The package contains the complete system stack:

* :mod:`repro.gaussians` — the 3D Gaussian Splatting substrate
  (representation, projection, tiling, sorting, reference rasterizer);
* :mod:`repro.core` — the paper's contribution: the IRSS dataflow and
  the GBU hardware model (tile engine, reuse cache, D&B engine,
  pipelines, standalone accelerator);
* :mod:`repro.gpu` — the calibrated edge-GPU timing model (the Jetson
  Orin NX stand-in);
* :mod:`repro.dynamics` — 4D Gaussians and animatable avatars;
* :mod:`repro.scenes` — the synthetic evaluation-scene catalog;
* :mod:`repro.metrics` — image quality, performance and energy;
* :mod:`repro.analysis` / :mod:`repro.harness` — the per-figure /
  per-table experiment drivers.

Quickstart::

    import numpy as np
    from repro import (
        Camera, GaussianCloud, GBUDevice, project, render_reference
    )
    from repro.core.irss import render_irss

    rng = np.random.default_rng(0)
    cloud = GaussianCloud.random(500, rng)
    camera = Camera.look_at(eye=[0, 0.3, -3], target=[0, 0, 0])
    projected = project(cloud, camera)
    reference = render_reference(projected)       # PFS baseline
    irss = render_irss(projected)                 # same image, IRSS
    report = GBUDevice().render(projected)        # GBU hardware model
"""

from repro.config import DEFAULT_SETTINGS, RenderSettings
from repro.core.gbu import GBUConfig, GBUDevice, GBUReport
from repro.core.irss import render_irss
from repro.core.standalone import GBUStandalone
from repro.core.transform import compute_transforms
from repro.gaussians import (
    Camera,
    GaussianCloud,
    Projected2D,
    RenderLists,
    TileGrid,
    build_render_lists,
    project,
    render_reference,
)
from repro.gpu import GPUTimingModel, ORIN_NX
from repro.render import (
    get_backend,
    list_backends,
    set_default_backend,
    use_backend,
)
from repro.scenes import build_scene, scene_names

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_SETTINGS",
    "RenderSettings",
    "GBUConfig",
    "GBUDevice",
    "GBUReport",
    "GBUStandalone",
    "render_irss",
    "compute_transforms",
    "Camera",
    "GaussianCloud",
    "Projected2D",
    "RenderLists",
    "TileGrid",
    "build_render_lists",
    "project",
    "render_reference",
    "GPUTimingModel",
    "ORIN_NX",
    "get_backend",
    "list_backends",
    "set_default_backend",
    "use_backend",
    "build_scene",
    "scene_names",
    "__version__",
]
