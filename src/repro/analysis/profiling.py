"""Workload profiling: Fig. 4, Fig. 5, Fig. 6, Fig. 9 and the
Challenge 1/2 statistics of Sec. III.

Everything here drives the *baseline* pipeline only — these are the
measurements that motivated the GBU design.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import FLOPS
from repro.core.flops import DataflowComparison, compare_dataflows, peak_fraction, tflops_for_target_fps
from repro.core.irss import render_irss
from repro.gaussians import build_render_lists, project, render_reference
from repro.gpu import FrameWorkload, GPUTimingModel, ScaleFactors, StageBreakdown
from repro.gpu.memory import bandwidth_fraction_for_fps, frame_traffic
from repro.gpu.specs import ORIN_NX
from repro.scenes import SceneBundle, build_scene
from repro.scenes.catalog import CATALOG, EVALUATION_SCENES, AppType, SceneSpec


@dataclass
class SceneProfile:
    """The per-scene numbers behind Fig. 4/5/6 and Sec. III-B.

    Attributes
    ----------
    breakdown:
        Baseline per-stage timing (Fig. 4 height, Fig. 5 split).
    comparison:
        PFS-vs-IRSS fragment/FLOP comparison (Fig. 6).
    fragment_ratio:
        Footprint fragments per visible Gaussian (Challenge 1).
    significant_fraction:
        Share of PFS fragments that contribute (Challenge 2).
    step3_dram_fraction_60fps:
        Fraction of DRAM bandwidth Step 3 would need at 60 FPS
        (Sec. V-A's 62.1%).
    eq7_peak_fraction_60fps:
        Fraction of the device's peak FLOPs Eq. 7 alone would need at
        60 FPS (Challenge 1's 58%).
    """

    scene: str
    app_type: AppType
    breakdown: StageBreakdown
    comparison: DataflowComparison
    fragment_ratio: float
    significant_fraction: float
    row_utilization: float
    step3_dram_fraction_60fps: float
    eq7_peak_fraction_60fps: float


def profile_scene(
    spec_or_name: SceneSpec | str,
    frame: int = 0,
    detail: float = 1.0,
    bundle: SceneBundle | None = None,
) -> SceneProfile:
    """Profile one scene's baseline pipeline."""
    spec = CATALOG[spec_or_name] if isinstance(spec_or_name, str) else spec_or_name
    if bundle is None:
        bundle = build_scene(spec, detail=detail)
    cloud, extra = bundle.frame_cloud(frame)
    projected = project(cloud, bundle.camera)
    lists = build_render_lists(projected)
    reference = render_reference(projected, lists)
    irss = render_irss(projected, lists)
    scales = ScaleFactors.for_scene(spec)
    workload = FrameWorkload.from_renders(
        reference, irss, lists, len(projected), extra, scales
    )
    breakdown = GPUTimingModel().frame_pfs(workload)
    traffic = frame_traffic(workload)
    eq7 = tflops_for_target_fps(
        workload.pfs_fragments * FLOPS.pfs_flops_per_fragment
    )
    return SceneProfile(
        scene=spec.name,
        app_type=spec.app_type,
        breakdown=breakdown,
        comparison=compare_dataflows(reference.stats, irss.stats),
        fragment_ratio=irss.stats.fragments_shaded / max(len(projected), 1),
        significant_fraction=reference.stats.significant_fraction,
        row_utilization=irss.workload.row_utilization(),
        step3_dram_fraction_60fps=bandwidth_fraction_for_fps(
            traffic.step3_bytes, ORIN_NX
        ),
        eq7_peak_fraction_60fps=peak_fraction(eq7, ORIN_NX.peak_tflops),
    )


def profile_evaluation_scenes(detail: float = 1.0) -> list[SceneProfile]:
    """Profile all 12 evaluation scenes (the Fig. 4/5 sweep)."""
    return [profile_scene(name, detail=detail) for name in EVALUATION_SCENES]


def per_row_workload_histogram(
    spec_or_name: SceneSpec | str, detail: float = 1.0, frame: int = 0
) -> np.ndarray:
    """Fig. 9: distribution of per-row fragment workload.

    Returns the (n_tiles x 16,) flattened array of per-row fragment
    counts for non-empty tiles — the imbalance that motivates the
    Row-Centric Tile Engine.
    """
    spec = CATALOG[spec_or_name] if isinstance(spec_or_name, str) else spec_or_name
    bundle = build_scene(spec, detail=detail)
    cloud, _ = bundle.frame_cloud(frame)
    projected = project(cloud, bundle.camera)
    lists = build_render_lists(projected)
    irss = render_irss(projected, lists)
    rows = irss.workload.row_fragments
    nonempty = rows.sum(axis=1) > 0
    return rows[nonempty].ravel()


def row_imbalance_ratio(rows: np.ndarray, group: int = 16) -> float:
    """Max-to-mean per-row workload within tiles (Fig. 9's point)."""
    rows = rows.reshape(-1, group).astype(np.float64)
    means = rows.mean(axis=1)
    maxes = rows.max(axis=1)
    mask = means > 0
    if not np.any(mask):
        return 0.0
    return float(np.mean(maxes[mask] / means[mask]))
