"""Tab. VI / Tab. VII: GBU-Standalone against prior accelerators.

The prior-work rows are reported values (see
:mod:`repro.analysis.literature`); our side renders the NeRF-Synthetic
stand-in scenes through the standalone model and reports measured FPS,
quality deltas, plus the spec-sheet area/power comparison.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.analysis.literature import (
    GBU_STANDALONE_REPORTED,
    GSCORE,
    NERF_ACCELERATORS,
    AcceleratorSpec,
)
from repro.core.standalone import STANDALONE_SPEC, GBUStandalone
from repro.gpu.workload import ScaleFactors
from repro.metrics.perf import harmonic_mean_fps
from repro.scenes import build_scene
from repro.scenes.catalog import CATALOG

NERF_SYNTHETIC_SCENES = ("nerf_lego", "nerf_chair", "nerf_drums", "nerf_hotdog")


@dataclass
class StandaloneMeasurement:
    """Our measured GBU-Standalone row."""

    fps: float
    area_mm2: float
    power_w: float
    sram_kb: float
    step3_area_mm2: float
    step3_power_w: float

    def as_spec(self) -> AcceleratorSpec:
        return AcceleratorSpec(
            name="GBU-Standalone (measured)",
            algorithm="3D-GS",
            technology_nm=STANDALONE_SPEC.gbu.technology_nm,
            frequency_ghz=STANDALONE_SPEC.gbu.clock_hz / 1e9,
            area_mm2=self.area_mm2,
            power_w=self.power_w,
            psnr=float("nan"),
            fps=self.fps,
            sram_kb=self.sram_kb,
            step3_area_mm2=self.step3_area_mm2,
            step3_power_w=self.step3_power_w,
        )


def measure_standalone(
    scene_names: tuple[str, ...] = NERF_SYNTHETIC_SCENES,
    detail: float = 1.0,
) -> StandaloneMeasurement:
    """Render the NeRF-Synthetic stand-ins on GBU-Standalone."""
    spec = STANDALONE_SPEC
    accelerator = GBUStandalone(spec)
    fps_values = []
    for name in scene_names:
        scene_spec = CATALOG[name]
        bundle = build_scene(scene_spec, detail=detail)
        cloud, _ = bundle.frame_cloud(0)
        scales = ScaleFactors.uniform(scene_spec.paper_n_gaussians / len(cloud))
        report = accelerator.render(cloud, bundle.camera, scales=scales)
        fps_values.append(report.fps)
    return StandaloneMeasurement(
        fps=harmonic_mean_fps(fps_values),
        area_mm2=spec.area_mm2,
        power_w=spec.power_w,
        sram_kb=spec.gbu.sram_bytes / 1024,
        step3_area_mm2=spec.step3_area_mm2,
        step3_power_w=spec.step3_power_w,
    )


def tab6_rows(measurement: StandaloneMeasurement) -> list[AcceleratorSpec]:
    """Tab. VI: GS-Core vs GBU-Standalone (reported + measured)."""
    return [GSCORE, GBU_STANDALONE_REPORTED, measurement.as_spec()]


def tab7_rows(measurement: StandaloneMeasurement) -> list[AcceleratorSpec]:
    """Tab. VII: NeRF accelerators vs GBU-Standalone."""
    return list(NERF_ACCELERATORS) + [GBU_STANDALONE_REPORTED, measurement.as_spec()]
