"""Streaming study: cross-frame reuse and serving-layer scheduling.

Quantifies what the frame-sequence layer (:mod:`repro.stream`) buys on
top of single-frame rendering: for one representative scene per
application class (or any requested subset), a head-jitter trajectory
is streamed and the study reports

* the cold (single-frame) vs. warm (cross-frame) reuse-cache hit rate,
* the fraction of (tile, Gaussian) binning instances served from the
  previous frame,
* the simulated frame rate of the stream, and
* the scene's motion magnitude (0 for static scenes), which explains
  why reuse differs across application classes.

The scheduling half (:func:`compare_placements`) serves a *skewed*
session mix — heavy long streams interleaved with light short ones, the
arrival order chosen so round-robin stacks the heavy sessions on one
worker — under every placement policy and reports makespan plus
per-frame latency percentiles.  ``benchmarks/bench_scheduler.py``
records it as ``BENCH_scheduler.json``.

The QoS half (:func:`compare_qos`) serves a mixed heavy/light load
against a per-frame deadline in both quality modes — ``fixed`` (the
requested detail, misses be damned) and ``adaptive`` (the closed-loop
controller of :mod:`repro.stream.qos`) — and reports deadline-miss
rates and delivered detail.  ``benchmarks/bench_qos.py`` records it as
``BENCH_qos.json``.

The fleet half (:func:`fleet_scaling_study`) serves one *generated*
open-loop Poisson traffic trace (:mod:`repro.stream.traffic`) on
fleets of increasing node count (:mod:`repro.stream.fleet`) and
reports per-count serving throughput, queue behaviour and cross-node
migrations — the multi-node scaling picture
``benchmarks/bench_fleet.py`` records as ``BENCH_fleet.json``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.errors import ValidationError
from repro.scenes.catalog import CATALOG, AppType, SceneSpec, build_scene
from repro.stream.fleet import EdgeFleet
from repro.stream.pipeline import FrameStream, StreamReport
from repro.stream.qos import QoSPolicy
from repro.stream.scheduler import PLACEMENTS
from repro.stream.server import StreamServer, StreamSession
from repro.stream.traffic import TrafficGenerator
from repro.stream.trajectory import CameraTrajectory

#: One representative scene per application class (catalog order).
DEFAULT_SCENES = ("bicycle", "flame_steak", "female_4")


@dataclass(frozen=True)
class StreamStudyPoint:
    """One scene's streaming outcome."""

    scene: str
    app_type: AppType
    trajectory: str
    n_frames: int
    cold_hit_rate: float
    warm_hit_rate: float
    binning_reuse: float
    mean_sim_fps: float
    motion: float

    @property
    def hit_rate_gain(self) -> float:
        """Warm-over-cold hit-rate improvement (absolute)."""
        return self.warm_hit_rate - self.cold_hit_rate


def scene_motion(spec: SceneSpec, bundle, n_frames: int) -> float:
    """Mean per-frame Gaussian motion along the stream (world units)."""
    if spec.app_type is not AppType.DYNAMIC or bundle.temporal_model is None:
        return 0.0
    step = 1.0 / bundle.n_eval_frames
    return bundle.temporal_model.mean_displacement(0.0, step)


def stream_scene(
    name: str,
    kind: str = "head_jitter",
    n_frames: int = 16,
    detail: float = 1.0,
    seed: int = 0,
) -> tuple[StreamStudyPoint, StreamReport]:
    """Stream one scene and summarize its cross-frame reuse."""
    spec = CATALOG[name]
    trajectory = CameraTrajectory.for_scene(
        spec, kind=kind, n_frames=n_frames, seed=seed, detail=detail
    )
    bundle = build_scene(spec, detail=detail)
    stream = FrameStream(spec, trajectory, detail=detail, bundle=bundle)
    report = stream.run()
    point = StreamStudyPoint(
        scene=name,
        app_type=spec.app_type,
        trajectory=kind,
        n_frames=report.n_frames,
        cold_hit_rate=report.cold_hit_rate,
        warm_hit_rate=report.warm_hit_rate,
        binning_reuse=report.binning_reuse,
        mean_sim_fps=report.mean_sim_fps,
        motion=scene_motion(spec, bundle, n_frames),
    )
    return point, report


def stream_reuse_study(
    scenes: tuple[str, ...] = DEFAULT_SCENES,
    kind: str = "head_jitter",
    n_frames: int = 16,
    detail: float = 1.0,
) -> list[StreamStudyPoint]:
    """The per-application-class streaming table."""
    return [
        stream_scene(name, kind=kind, n_frames=n_frames, detail=detail)[0]
        for name in scenes
    ]


# ----------------------------------------------------------------------
# Scheduling study
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PlacementPoint:
    """One placement policy's outcome on a session mix.

    ``p50/p95_frame_seconds`` are percentiles of each frame's own
    render latency (placement-invariant by construction — recorded as
    the workload profile); ``p50/p95_completion_seconds`` are
    percentiles of each frame's *simulated completion time* — the
    rendering worker's cumulative busy seconds when the frame finished
    — which includes queueing behind co-scheduled sessions and is what
    placement actually moves.
    """

    placement: str
    workers: int
    sessions: int
    total_frames: int
    sim_makespan_seconds: float
    p50_frame_seconds: float
    p95_frame_seconds: float
    p50_completion_seconds: float
    p95_completion_seconds: float
    migrations: int


@dataclass(frozen=True)
class PlacementComparison:
    """Every placement policy served the same mix on the same pool."""

    workers: int
    points: dict[str, PlacementPoint]

    @property
    def speedup(self) -> float:
        """Round-robin makespan over load-aware makespan (>1: load wins)."""
        load = self.points["load"].sim_makespan_seconds
        if load <= 0:
            return 0.0
        return self.points["rr"].sim_makespan_seconds / load


def skewed_session_mix(
    heavy_scene: str = "bicycle",
    light_scene: str = "female_4",
    heavy_frames: int = 12,
    light_frames: int = 4,
    pairs: int = 2,
    detail: float = 1.0,
) -> list[StreamSession]:
    """A session mix that punishes arrival-order placement.

    Heavy (large scene, long stream) and light (small scene, short
    stream) sessions alternate in arrival order, so with ``pairs``
    equal to the worker count, round-robin stacks every heavy session
    on the even workers while load-aware placement spreads them.
    """
    sessions = []
    for i in range(pairs):
        for scene, frames, tag in (
            (heavy_scene, heavy_frames, "heavy"),
            (light_scene, light_frames, "light"),
        ):
            spec = CATALOG[scene]
            sessions.append(
                StreamSession(
                    session_id=f"{tag}-{i}",
                    scene=scene,
                    trajectory=CameraTrajectory.for_scene(
                        spec,
                        kind="orbit",
                        n_frames=frames,
                        detail=detail,
                        phase_deg=i * 360.0 / max(pairs, 1),
                    ),
                    detail=detail,
                )
            )
    return sessions


# ----------------------------------------------------------------------
# Quality-of-service study
# ----------------------------------------------------------------------

#: The two quality modes :func:`compare_qos` serves.
QOS_MODES = ("fixed", "adaptive")


@dataclass(frozen=True)
class QoSPoint:
    """One quality mode's outcome on a session mix under a deadline.

    ``mean_scale`` is the mean delivered detail relative to each
    session's requested (nominal) detail — 1.0 means full requested
    quality; the quality floor the QoS benchmark asserts is on this
    number, so it reads the same at any nominal detail.
    """

    mode: str
    target_fps: float
    workers: int
    sessions: int
    total_frames: int
    deadline_misses: int
    miss_rate: float
    mean_detail: float
    mean_scale: float
    sim_makespan_seconds: float


@dataclass(frozen=True)
class QoSComparison:
    """Both quality modes served the same mix on the same pool."""

    workers: int
    target_fps: float
    points: dict[str, QoSPoint]

    @property
    def miss_reduction(self) -> float:
        """Fixed-over-adaptive deadline-miss-rate ratio (>1: QoS wins).

        Infinite when the adaptive mode misses nothing while fixed
        does; 1.0 when neither mode misses.
        """
        missing = [m for m in QOS_MODES if m not in self.points]
        if missing:
            raise ValidationError(
                "miss_reduction needs both quality modes; comparison "
                f"lacks {', '.join(missing)}"
            )
        fixed = self.points["fixed"].miss_rate
        adaptive = self.points["adaptive"].miss_rate
        if adaptive <= 0:
            return float("inf") if fixed > 0 else 1.0
        return fixed / adaptive


def qos_session_mix(
    heavy_scene: str = "bicycle",
    light_scene: str = "female_4",
    heavy: int = 2,
    light: int = 2,
    n_frames: int = 16,
    detail: float = 1.0,
) -> list[StreamSession]:
    """A mixed heavy/light load for the QoS study.

    Heavy sessions (large outdoor scene) blow a 72 Hz frame budget at
    full detail; light ones (avatar scene) meet it with room to spare
    — so fixed-detail serving misses on the heavy half while the
    adaptive controller trades their detail for deadline compliance
    and leaves the light half untouched.
    """
    sessions = []
    for tag, scene, count in (
        ("heavy", heavy_scene, heavy),
        ("light", light_scene, light),
    ):
        spec = CATALOG[scene]
        for i in range(count):
            sessions.append(
                StreamSession(
                    session_id=f"{tag}-{i}",
                    scene=scene,
                    trajectory=CameraTrajectory.for_scene(
                        spec,
                        kind="orbit",
                        n_frames=n_frames,
                        detail=detail,
                        phase_deg=i * 360.0 / max(count, 1),
                    ),
                    detail=detail,
                )
            )
    return sessions


def compare_qos(
    sessions: list[StreamSession] | None = None,
    workers: int = 2,
    target_fps: float = 72.0,
    detail: float = 1.0,
    policy: QoSPolicy | None = None,
    modes: tuple[str, ...] = QOS_MODES,
) -> QoSComparison:
    """Serve one mix under a deadline in every quality mode.

    Every mode serves *the same* session descriptors (re-tagged with
    the mode's QoS policy) on the same deterministic in-process pool at
    equal worker count, so miss-rate differences are attributable to
    quality control alone.
    """
    if sessions is None:
        sessions = qos_session_mix(detail=detail)
    nominal = {s.session_id: s.detail for s in sessions}
    points = {}
    for mode in modes:
        if mode not in QOS_MODES:
            raise ValidationError(f"unknown QoS mode '{mode}'")
        mode_policy = QoSPolicy.fixed() if mode == "fixed" else policy
        tagged = [
            replace(s, target_fps=target_fps, qos=mode_policy)
            for s in sessions
        ]
        with StreamServer(workers=workers, local=True) as server:
            results, summary = server.serve_timed(tagged)
        frames = [f for r in results for f in r.report.frames]
        scales = [
            f.detail / nominal[r.session_id]
            for r in results
            for f in r.report.frames
        ]
        misses = sum(1 for f in frames if f.qos is not None and not f.qos.met)
        points[mode] = QoSPoint(
            mode=mode,
            target_fps=target_fps,
            workers=summary.workers,
            sessions=summary.sessions,
            total_frames=summary.total_frames,
            deadline_misses=misses,
            miss_rate=misses / len(frames) if frames else 0.0,
            mean_detail=float(np.mean([f.detail for f in frames])) if frames else 0.0,
            mean_scale=float(np.mean(scales)) if scales else 0.0,
            sim_makespan_seconds=summary.sim_makespan_seconds,
        )
    return QoSComparison(workers=workers, target_fps=target_fps, points=points)


# ----------------------------------------------------------------------
# Fleet scaling study
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FleetScalingPoint:
    """One fleet size's outcome on a generated traffic trace."""

    nodes: int
    sessions: int
    total_frames: int
    sim_makespan_seconds: float
    sim_frames_per_sec: float
    migrations: int
    max_queue_depth: int
    mean_admission_delay: float
    ticks: int


@dataclass(frozen=True)
class FleetScalingComparison:
    """Every fleet size served the identical generated arrival trace.

    ``scaling`` is the simulated serving-throughput ratio between the
    largest and the smallest fleet — the acceptance number
    ``benchmarks/bench_fleet.py`` asserts a floor on.
    """

    mix: str
    rate: float
    duration: float
    seed: int
    points: dict[int, FleetScalingPoint]

    @property
    def scaling(self) -> float:
        lo, hi = min(self.points), max(self.points)
        base = self.points[lo].sim_frames_per_sec
        if base <= 0:
            return 0.0
        return self.points[hi].sim_frames_per_sec / base

    @property
    def scaling_span(self) -> tuple[int, int]:
        return (min(self.points), max(self.points))


def fleet_scaling_study(
    node_counts: tuple[int, ...] = (1, 2, 4),
    mix: str = "heavy",
    rate: float = 60.0,
    duration: float = 0.25,
    detail: float = 1.0,
    seed: int = 3,
    node_capacity: int = 4,
    node_workers: int = 1,
    migration: bool = True,
) -> FleetScalingComparison:
    """Serve one generated Poisson trace on fleets of each size.

    The trace is regenerated from the same seed per fleet size, so
    every fleet sees bitwise-identical arrivals; throughput differences
    are attributable to the node count (plus routing/migration), not
    the workload.  The rate deliberately saturates a single node so
    scaling reflects added capacity rather than idle machines.
    """
    if not node_counts:
        raise ValidationError("fleet study needs at least one node count")
    points = {}
    for nodes in node_counts:
        arrivals = TrafficGenerator(
            mix=mix, rate=rate, duration=duration, seed=seed, detail=detail
        ).generate()
        with EdgeFleet(
            nodes=nodes,
            node_workers=node_workers,
            node_capacity=node_capacity,
            migration=migration,
        ) as fleet:
            result = fleet.serve(arrivals)
        summary = result.summary
        points[nodes] = FleetScalingPoint(
            nodes=nodes,
            sessions=summary.sessions,
            total_frames=summary.total_frames,
            sim_makespan_seconds=summary.sim_makespan_seconds,
            sim_frames_per_sec=summary.sim_frames_per_sec,
            migrations=len(result.migrations),
            max_queue_depth=result.max_queue_depth,
            mean_admission_delay=result.mean_admission_delay,
            ticks=result.ticks,
        )
    return FleetScalingComparison(
        mix=mix, rate=rate, duration=duration, seed=seed, points=points
    )


def compare_placements(
    sessions: list[StreamSession] | None = None,
    workers: int = 2,
    detail: float = 1.0,
    placements: tuple[str, ...] = PLACEMENTS,
    max_inflight: int | None = None,
) -> PlacementComparison:
    """Serve one mix under every placement policy (deterministic).

    Uses the server's in-process ``local`` mode: the simulated makespan
    — total paper-scale busy seconds of the busiest worker — depends
    only on placement, not on host parallelism, so no process pool is
    needed to compare policies.
    """
    if sessions is None:
        sessions = skewed_session_mix(pairs=workers, detail=detail)
    points = {}
    for placement in placements:
        with StreamServer(
            workers=workers,
            placement=placement,
            local=True,
            max_inflight=max_inflight,
        ) as server:
            results, summary = server.serve_timed(sessions)
            completions = [
                c for stamps in server.frame_completions.values() for c in stamps
            ]
        latencies = [
            f.sim_seconds for r in results for f in r.report.frames
        ]
        points[placement] = PlacementPoint(
            placement=placement,
            workers=summary.workers,
            sessions=summary.sessions,
            total_frames=summary.total_frames,
            sim_makespan_seconds=summary.sim_makespan_seconds,
            p50_frame_seconds=float(np.percentile(latencies, 50)),
            p95_frame_seconds=float(np.percentile(latencies, 95)),
            p50_completion_seconds=float(np.percentile(completions, 50)),
            p95_completion_seconds=float(np.percentile(completions, 95)),
            migrations=summary.migrations,
        )
    return PlacementComparison(workers=workers, points=points)
