"""Streaming study: cross-frame reuse over the evaluation scenes.

Quantifies what the frame-sequence layer (:mod:`repro.stream`) buys on
top of single-frame rendering: for one representative scene per
application class (or any requested subset), a head-jitter trajectory
is streamed and the study reports

* the cold (single-frame) vs. warm (cross-frame) reuse-cache hit rate,
* the fraction of (tile, Gaussian) binning instances served from the
  previous frame,
* the simulated frame rate of the stream, and
* the scene's motion magnitude (0 for static scenes), which explains
  why reuse differs across application classes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.scenes.catalog import CATALOG, AppType, SceneSpec, build_scene
from repro.stream.pipeline import FrameStream, StreamReport
from repro.stream.trajectory import CameraTrajectory

#: One representative scene per application class (catalog order).
DEFAULT_SCENES = ("bicycle", "flame_steak", "female_4")


@dataclass(frozen=True)
class StreamStudyPoint:
    """One scene's streaming outcome."""

    scene: str
    app_type: AppType
    trajectory: str
    n_frames: int
    cold_hit_rate: float
    warm_hit_rate: float
    binning_reuse: float
    mean_sim_fps: float
    motion: float

    @property
    def hit_rate_gain(self) -> float:
        """Warm-over-cold hit-rate improvement (absolute)."""
        return self.warm_hit_rate - self.cold_hit_rate


def scene_motion(spec: SceneSpec, bundle, n_frames: int) -> float:
    """Mean per-frame Gaussian motion along the stream (world units)."""
    if spec.app_type is not AppType.DYNAMIC or bundle.temporal_model is None:
        return 0.0
    step = 1.0 / bundle.n_eval_frames
    return bundle.temporal_model.mean_displacement(0.0, step)


def stream_scene(
    name: str,
    kind: str = "head_jitter",
    n_frames: int = 16,
    detail: float = 1.0,
    seed: int = 0,
) -> tuple[StreamStudyPoint, StreamReport]:
    """Stream one scene and summarize its cross-frame reuse."""
    spec = CATALOG[name]
    trajectory = CameraTrajectory.for_scene(
        spec, kind=kind, n_frames=n_frames, seed=seed, detail=detail
    )
    bundle = build_scene(spec, detail=detail)
    stream = FrameStream(spec, trajectory, detail=detail, bundle=bundle)
    report = stream.run()
    point = StreamStudyPoint(
        scene=name,
        app_type=spec.app_type,
        trajectory=kind,
        n_frames=report.n_frames,
        cold_hit_rate=report.cold_hit_rate,
        warm_hit_rate=report.warm_hit_rate,
        binning_reuse=report.binning_reuse,
        mean_sim_fps=report.mean_sim_fps,
        motion=scene_motion(spec, bundle, n_frames),
    )
    return point, report


def stream_reuse_study(
    scenes: tuple[str, ...] = DEFAULT_SCENES,
    kind: str = "head_jitter",
    n_frames: int = 16,
    detail: float = 1.0,
) -> list[StreamStudyPoint]:
    """The per-application-class streaming table."""
    return [
        stream_scene(name, kind=kind, n_frames=n_frames, detail=detail)[0]
        for name in scenes
    ]
