"""Reported numbers from prior work, used as comparison points.

Fig. 1's landscape, Tab. VI's GS-Core row and Tab. VII's NeRF
accelerator rows are *reported* values in the paper (taken from the
cited publications), not measurements the paper reran.  We keep them
as data here, exactly as the paper did, and measure only our side
(GBU / GBU-Standalone) of each comparison.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RenderingMethod:
    """A point in Fig. 1's quality/speed landscape (edge-GPU speeds)."""

    name: str
    family: str  # "voxel_nerf" | "mlp_nerf" | "gaussian"
    app_type: str  # "static" | "dynamic" | "avatar"
    psnr: float
    fps: float


# Fig. 1: reported PSNR and edge-GPU FPS for representative methods.
# Values follow the cited papers' tables ([6], [7], [10], [19], [40],
# [48] vs [20], [46], [51]) with speeds on the Jetson Orin NX scale.
FIG1_LANDSCAPE = (
    RenderingMethod("MipNeRF-360", "mlp_nerf", "static", 29.2, 0.05),
    RenderingMethod("Instant-NGP", "voxel_nerf", "static", 27.6, 1.8),
    RenderingMethod("3D-GS", "gaussian", "static", 28.9, 13.0),
    RenderingMethod("HyperReel", "mlp_nerf", "dynamic", 31.1, 0.4),
    RenderingMethod("MixVoxels", "voxel_nerf", "dynamic", 30.7, 2.4),
    RenderingMethod("4D-GS", "gaussian", "dynamic", 33.8, 18.0),
    RenderingMethod("AnimNeRF", "mlp_nerf", "avatar", 29.8, 0.2),
    RenderingMethod("InstantAvatar", "voxel_nerf", "avatar", 29.2, 3.1),
    RenderingMethod("SplattingAvatar", "gaussian", "avatar", 32.2, 41.0),
)


@dataclass(frozen=True)
class AcceleratorSpec:
    """A standalone accelerator row (Tab. VI / Tab. VII)."""

    name: str
    algorithm: str
    technology_nm: int
    frequency_ghz: float
    area_mm2: float
    power_w: float
    psnr: float
    fps: float
    sram_kb: float = float("nan")
    step3_area_mm2: float = float("nan")
    step3_power_w: float = float("nan")


# Tab. VI: GS-Core (Lee et al., ASPLOS 2024), as reported by the paper.
GSCORE = AcceleratorSpec(
    name="GS-Core",
    algorithm="3D-GS",
    technology_nm=28,
    frequency_ghz=1.0,
    area_mm2=3.95,
    power_w=0.87,
    psnr=float("nan"),
    fps=float("nan"),
    sram_kb=272.0,
    step3_area_mm2=1.81,
    step3_power_w=0.25,
)

# Tab. VII: NeRF accelerators on NeRF-Synthetic, reported values.
NERF_ACCELERATORS = (
    AcceleratorSpec("ICARUS", "NeRF", 40, 0.3, float("nan"), 0.3, 30.21, 0.03),
    AcceleratorSpec("RT-NeRF", "TensoRF", 28, 1.0, 18.85, 8.0, 31.79, 45.0),
    AcceleratorSpec("Instant-3D", "Instant-NGP", 28, 0.8, 6.8, 1.9, 33.18, 30.0),
)

# Paper-reported GBU-Standalone row of Tab. VI/VII (the target our
# standalone model is compared against in EXPERIMENTS.md).
GBU_STANDALONE_REPORTED = AcceleratorSpec(
    name="GBU-Standalone",
    algorithm="3D-GS",
    technology_nm=28,
    frequency_ghz=1.0,
    area_mm2=1.78,
    power_w=0.78,
    psnr=33.26,
    fps=172.0,
    sram_kb=63.0,
    step3_area_mm2=0.50,
    step3_power_w=0.15,
)


# Paper-reported headline numbers, collected for EXPERIMENTS.md's
# paper-vs-measured tables.
PAPER_CLAIMS = {
    "static_baseline_fps": 12.8,
    "static_gbu_fps": 91.5,
    "dynamic_baseline_fps": 18.0,
    "dynamic_gbu_fps": 80.0,
    "avatar_baseline_fps": 41.0,
    "avatar_gbu_fps": 102.0,
    "irss_gpu_fps": 22.0,
    "irss_step3_reduction": 0.59,
    "irss_gpu_utilization": 0.189,
    "static_energy_improvement": 10.8,
    "dynamic_energy_improvement": 4.4,
    "avatar_energy_improvement": 2.5,
    "cache_traffic_reduction": 0.449,
    "cache_speedup": 1.14,
    "dnb_speedup": 1.21,
    "step3_dram_fraction": 0.621,
    "fragment_ratio_static": 541.0,
    "fragment_ratio_dynamic": 161.0,
    "fragment_ratio_avatar": 688.0,
    "significant_fraction_static": 0.076,
    "significant_fraction_dynamic": 0.137,
    "significant_fraction_avatar": 0.099,
    "skip_rate_max": 0.923,
    "flops_reduction_per_fragment": 5.5,
    "distance_4x_speedup": 4.7,
    "ablation_fps": {
        "gpu_pfs": 12.8,
        "gpu_irss": 22.0,
        "gbu_tile": 66.1,
        "gbu_dnb": 80.6,
        "gbu_full": 91.5,
    },
    "cache_hit_64kb": {"static": 0.597, "dynamic": 0.474, "avatar": 0.377},
}
