"""Experiment drivers: one module per evaluation axis of the paper.

endtoend:
    System-level configurations (baseline GPU, IRSS-on-GPU, GBU
    variants) evaluated per scene — feeds Fig. 14/15 and Tab. V.
profiling:
    Workload profiling (Fig. 4/5/6/9, Challenge 1/2 statistics).
ablation:
    The Tab. V technique-by-technique ablation and Sec. IV-D numbers.
scaling:
    Resolution scaling (Fig. 16) and camera-distance stress (Sec. VI-F).
cache_study:
    Cache size sweeps (Fig. 17) and DRAM pressure (Sec. V-A).
quality:
    Rendering-quality parity (Tab. IV).
literature:
    Reported-number baselines (Fig. 1, Tab. VI, Tab. VII).
"""
