"""Cache and memory studies: Fig. 17 (hit rate vs capacity), the
Sec. V-A DRAM-pressure measurements, and the replacement-policy
ablation (reuse-distance vs LRU vs FIFO).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dnb import reuse_distance_table, run_dnb
from repro.core.reuse_cache import POLICIES, sweep_cache_sizes
from repro.gaussians import project
from repro.gpu.specs import GBU_SPEC
from repro.scenes import build_scene
from repro.scenes.catalog import CATALOG, AppType, SceneSpec, scenes_of_type

# Fig. 17's x-axis (bytes); 0 KB is the no-cache point.
CACHE_SIZES = tuple(k * 1024 for k in (0, 2, 4, 8, 16, 32, 64))


@dataclass
class CacheSweepResult:
    """Hit-rate curve for one scene."""

    scene: str
    app_type: AppType
    policy: str
    hit_rates: dict[int, float]

    def saturation_size(self, tolerance: float = 0.01) -> int:
        """Smallest capacity whose hit rate is within ``tolerance`` of
        the largest capacity's (the paper picks 32 KB this way)."""
        sizes = sorted(self.hit_rates)
        best = self.hit_rates[sizes[-1]]
        for size in sizes:
            if best - self.hit_rates[size] <= tolerance:
                return size
        return sizes[-1]


def _frame_trace(spec: SceneSpec, frame: int = 0, detail: float = 1.0):
    bundle = build_scene(spec, detail=detail)
    cloud, _ = bundle.frame_cloud(frame)
    projected = project(cloud, bundle.camera)
    dnb = run_dnb(projected)
    return reuse_distance_table(dnb.lists)


def sweep_scene(
    spec_or_name: SceneSpec | str,
    sizes: tuple[int, ...] = CACHE_SIZES,
    policy: str = "reuse_distance",
    detail: float = 1.0,
) -> CacheSweepResult:
    """Fig. 17 for a single scene."""
    spec = CATALOG[spec_or_name] if isinstance(spec_or_name, str) else spec_or_name
    trace, tiles = _frame_trace(spec, detail=detail)
    reports = sweep_cache_sizes(
        trace, tiles, list(sizes), GBU_SPEC.feature_bytes, policy
    )
    return CacheSweepResult(
        scene=spec.name,
        app_type=spec.app_type,
        policy=policy,
        hit_rates={size: report.hit_rate for size, report in reports.items()},
    )


def sweep_app_types(
    sizes: tuple[int, ...] = CACHE_SIZES,
    policy: str = "reuse_distance",
    detail: float = 1.0,
) -> dict[AppType, dict[int, float]]:
    """Fig. 17: average hit-rate curve per application class."""
    curves: dict[AppType, dict[int, float]] = {}
    for app in AppType:
        rates: dict[int, list[float]] = {size: [] for size in sizes}
        for spec in scenes_of_type(app):
            result = sweep_scene(spec, sizes, policy, detail)
            for size, rate in result.hit_rates.items():
                rates[size].append(rate)
        curves[app] = {size: float(np.mean(vals)) for size, vals in rates.items()}
    return curves


@dataclass
class PolicyComparison:
    """Replacement-policy ablation at the shipping 32 KB capacity."""

    scene: str
    hit_rates: dict[str, float]

    @property
    def rd_advantage_over_lru(self) -> float:
        return self.hit_rates["reuse_distance"] - self.hit_rates["lru"]


def compare_policies(
    spec_or_name: SceneSpec | str,
    capacity_bytes: int = 32 * 1024,
    detail: float = 1.0,
) -> PolicyComparison:
    """Reuse-distance vs LRU vs FIFO on one frame's trace."""
    spec = CATALOG[spec_or_name] if isinstance(spec_or_name, str) else spec_or_name
    trace, tiles = _frame_trace(spec, detail=detail)
    lines = capacity_bytes // GBU_SPEC.feature_bytes
    rates = {}
    for name, cls in POLICIES.items():
        report = cls(lines, GBU_SPEC.feature_bytes).simulate(trace, tiles)
        rates[name] = report.hit_rate
    return PolicyComparison(scene=spec.name, hit_rates=rates)


@dataclass
class MemoryPressure:
    """Sec. V-A numbers for one scene."""

    scene: str
    traffic_reduction: float
    pipeline_slowdown_without_cache: float


def memory_pressure(
    spec_or_name: SceneSpec | str, detail: float = 1.0
) -> MemoryPressure:
    """Cache traffic reduction (44.9%) and the end-to-end cost of
    removing the cache (13.5% in Sec. V-A)."""
    from repro.analysis.endtoend import evaluate_scene  # local: avoid cycle

    spec = CATALOG[spec_or_name] if isinstance(spec_or_name, str) else spec_or_name
    with_cache = evaluate_scene(spec, "gbu_full", detail=detail)
    without = evaluate_scene(spec, "gbu_dnb", detail=detail)
    return MemoryPressure(
        scene=spec.name,
        traffic_reduction=with_cache.gbu_report.cache.traffic_reduction,
        pipeline_slowdown_without_cache=(
            without.frame_seconds / with_cache.frame_seconds - 1.0
        ),
    )
