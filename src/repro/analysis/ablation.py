"""The Tab. V ablation and the Sec. IV-D IRSS-on-GPU result.

Techniques are added one by one on the static scenes: IRSS dataflow
(as a GPU kernel), the GBU Tile Engine, the D&B Engine, and the
Gaussian Reuse Cache; each row reports average FPS, energy-efficiency
improvement, and rendering quality (PSNR/LPIPS against the scene's
ground truth, which degrades only when the fp16 Tile PE enters).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.endtoend import CONFIG_NAMES, evaluate_all_configs
from repro.analysis.quality import ground_truth_image
from repro.metrics.energy import EnergyModel
from repro.metrics.image import lpips_proxy, psnr
from repro.metrics.perf import harmonic_mean_fps
from repro.scenes.catalog import AppType, scenes_of_type


ABLATION_ROWS = {
    "gpu_pfs": "Jetson Orin NX",
    "gpu_irss": "+ IRSS Dataflow",
    "gbu_tile": "+ GBU Tile Engine",
    "gbu_dnb": "+ GBU D&B Engine",
    "gbu_full": "+ GBU Reuse Cache",
}


@dataclass
class AblationRow:
    """One row of Tab. V."""

    config: str
    label: str
    fps: float
    energy_efficiency: float
    psnr: float
    lpips: float


def run_ablation(
    scene_names: list[str] | None = None,
    detail: float = 1.0,
    frame: int = 0,
) -> list[AblationRow]:
    """Reproduce Tab. V on the static scenes (or a chosen subset)."""
    if scene_names is None:
        scene_names = [s.name for s in scenes_of_type(AppType.STATIC)]

    per_config_fps: dict[str, list[float]] = {c: [] for c in CONFIG_NAMES}
    per_config_energy: dict[str, list[float]] = {c: [] for c in CONFIG_NAMES}
    per_config_psnr: dict[str, list[float]] = {c: [] for c in CONFIG_NAMES}
    per_config_lpips: dict[str, list[float]] = {c: [] for c in CONFIG_NAMES}

    for name in scene_names:
        results = evaluate_all_configs(name, frame=frame, detail=detail)
        baseline_energy = results["gpu_pfs"].energy
        truth = ground_truth_image(name, detail=detail, frame=frame)
        for config, result in results.items():
            per_config_fps[config].append(result.fps)
            per_config_energy[config].append(
                EnergyModel.efficiency_improvement(baseline_energy, result.energy)
            )
            per_config_psnr[config].append(psnr(truth, result.image))
            per_config_lpips[config].append(lpips_proxy(truth, result.image))

    rows = []
    for config in CONFIG_NAMES:
        rows.append(
            AblationRow(
                config=config,
                label=ABLATION_ROWS[config],
                fps=harmonic_mean_fps(per_config_fps[config]),
                energy_efficiency=float(np.mean(per_config_energy[config])),
                psnr=float(np.mean(per_config_psnr[config])),
                lpips=float(np.mean(per_config_lpips[config])),
            )
        )
    return rows


@dataclass
class IrssGpuResult:
    """Sec. IV-D: IRSS deployed directly on the GPU."""

    baseline_fps: float
    irss_fps: float
    step3_reduction: float
    irss_step3_utilization: float

    @property
    def speedup(self) -> float:
        return self.irss_fps / self.baseline_fps


def irss_on_gpu(
    scene_names: list[str] | None = None, detail: float = 1.0
) -> IrssGpuResult:
    """The 13 -> 22 FPS / -59% Step-3 latency result of Sec. IV-D."""
    if scene_names is None:
        scene_names = [s.name for s in scenes_of_type(AppType.STATIC)]
    base_fps, irss_fps, reductions, utils = [], [], [], []
    for name in scene_names:
        results = evaluate_all_configs(name, detail=detail)
        pfs = results["gpu_pfs"].breakdown
        irss = results["gpu_irss"].breakdown
        base_fps.append(1.0 / pfs.total_s)
        irss_fps.append(1.0 / irss.total_s)
        reductions.append(1.0 - irss.step3_s / pfs.step3_s)
        utils.append(irss.step3_utilization)
    return IrssGpuResult(
        baseline_fps=harmonic_mean_fps(base_fps),
        irss_fps=harmonic_mean_fps(irss_fps),
        step3_reduction=float(np.mean(reductions)),
        irss_step3_utilization=float(np.mean(utils)),
    )
