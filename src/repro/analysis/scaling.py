"""Scaling studies: rendering resolution (Fig. 16) and camera distance
(Sec. VI-F's first extreme case).

Both experiments hold the scene and the calibrated device models fixed
and vary exactly one knob, so the resulting curves are pure model
predictions.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.analysis.endtoend import SYNC_SECONDS
from repro.core.gbu import GBUDevice
from repro.core.irss import render_irss
from repro.core.pipeline import PipelinedFrame
from repro.errors import ValidationError
from repro.gaussians import build_render_lists, project, render_reference
from repro.gpu import FrameWorkload, GPUTimingModel, ScaleFactors
from repro.scenes import build_scene
from repro.scenes.catalog import CATALOG, SceneSpec

# Fig. 16's three resolutions, as fractions of the catalog resolution
# (paper: 676x507, 1352x1014, 2704x2028 — 0.5x, 1x, 2x linear).
RESOLUTION_FACTORS = (0.5, 1.0, 2.0)


@dataclass
class ScalingPoint:
    """One bar pair of Fig. 16 (or one distance point of Sec. VI-F)."""

    scene: str
    factor: float
    width: int
    height: int
    baseline_fps: float
    gbu_fps: float

    @property
    def speedup(self) -> float:
        return self.gbu_fps / self.baseline_fps


def _evaluate_at_camera(spec: SceneSpec, bundle, camera) -> tuple[float, float]:
    """(baseline_fps, gbu_fps) for a scene under a modified camera."""
    cloud, extra = bundle.frame_cloud(0)
    projected = project(cloud, camera)
    lists = build_render_lists(projected)
    reference = render_reference(projected, lists)
    irss = render_irss(projected, lists)
    scales = ScaleFactors.for_scene(spec)
    workload = FrameWorkload.from_renders(
        reference, irss, lists, len(projected), extra, scales
    )
    gpu_model = GPUTimingModel()
    baseline = gpu_model.frame_pfs(workload)

    device = GBUDevice()
    report = device.render(projected, scales=scales)
    gpu_s = gpu_model.step1_seconds(workload) + gpu_model.step2_seconds(
        workload, keys=workload.n_gaussians, depth_sort_only=True
    )
    pipe = PipelinedFrame(gpu_s, report.step3_seconds, SYNC_SECONDS)
    return 1.0 / baseline.total_s, pipe.fps


def resolution_sweep(
    spec_or_name: SceneSpec | str,
    factors: tuple[float, ...] = RESOLUTION_FACTORS,
) -> list[ScalingPoint]:
    """Fig. 16: baseline vs GBU FPS across rendering resolutions.

    The camera is rescaled (same field of view, more pixels); the
    Gaussian model is unchanged, so higher resolutions mean more
    fragments per Gaussian — exactly the regime where the paper shows
    GBU's advantage growing.
    """
    spec = CATALOG[spec_or_name] if isinstance(spec_or_name, str) else spec_or_name
    bundle = build_scene(spec)
    points = []
    for factor in factors:
        if factor <= 0:
            raise ValidationError("resolution factor must be positive")
        width = max(int(round(spec.width * factor / 16)) * 16, 32)
        height = max(int(round(spec.height * factor / 16)) * 16, 32)
        camera = bundle.camera.with_resolution(width, height)
        base_fps, gbu_fps = _evaluate_at_camera(spec, bundle, camera)
        points.append(
            ScalingPoint(
                scene=spec.name,
                factor=factor,
                width=width,
                height=height,
                baseline_fps=base_fps,
                gbu_fps=gbu_fps,
            )
        )
    return points


def camera_distance_sweep(
    spec_or_name: SceneSpec | str,
    factors: tuple[float, ...] = (1.0, 2.0, 4.0),
) -> list[ScalingPoint]:
    """Sec. VI-F: dolly the camera away from the scene.

    Distant cameras shrink every footprint, eroding IRSS's compute
    sharing (fewer fragments per row); the paper measures the static
    end-to-end speedup dropping from 10.8x to 4.7x at 4x distance.
    """
    spec = CATALOG[spec_or_name] if isinstance(spec_or_name, str) else spec_or_name
    bundle = build_scene(spec)
    points = []
    for factor in factors:
        camera = bundle.camera.dollied(factor)
        base_fps, gbu_fps = _evaluate_at_camera(spec, bundle, camera)
        points.append(
            ScalingPoint(
                scene=spec.name,
                factor=factor,
                width=camera.width,
                height=camera.height,
                baseline_fps=base_fps,
                gbu_fps=gbu_fps,
            )
        )
    return points
