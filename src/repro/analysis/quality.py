"""Rendering-quality parity (Tab. IV).

The paper compares renders against ground-truth photographs.  Offline,
we substitute held-out reference renders (DESIGN.md, Substitution 5):
a scene's "true" Gaussian model renders the ground-truth image in full
precision, then a *perturbed* copy (simulating reconstruction error)
plays the role of the fitted model.  Rendering the perturbed model
through the GPU reference pipeline and through the GBU's fp16 pipeline
yields the two PSNR/LPIPS columns; their *difference* is the quantity
Tab. IV reports (<0.1 dB PSNR, <0.01 LPIPS).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.gbu import GBUConfig, GBUDevice
from repro.gaussians import build_render_lists, project, render_reference
from repro.metrics.image import lpips_proxy, psnr
from repro.scenes import build_scene
from repro.scenes.catalog import CATALOG, AppType, SceneSpec

# Perturbation magnitudes emulating a well-converged reconstruction:
# chosen to land reference PSNR in the paper's high-20s/low-30s range.
POSITION_SIGMA = 0.004
SCALE_SIGMA = 0.05
OPACITY_SIGMA = 0.08
SH_SIGMA = 0.012


@dataclass
class QualityResult:
    """PSNR/LPIPS of both pipelines against the scene ground truth."""

    scene: str
    app_type: AppType
    reference_psnr: float
    reference_lpips: float
    gbu_psnr: float
    gbu_lpips: float

    @property
    def psnr_delta(self) -> float:
        """Reference minus GBU (positive = GBU slightly worse)."""
        return self.reference_psnr - self.gbu_psnr

    @property
    def lpips_delta(self) -> float:
        return self.gbu_lpips - self.reference_lpips


def ground_truth_image(
    spec_or_name: SceneSpec | str, detail: float = 1.0, frame: int = 0
) -> np.ndarray:
    """The scene's held-out ground truth (full-precision render of the
    unperturbed model)."""
    spec = CATALOG[spec_or_name] if isinstance(spec_or_name, str) else spec_or_name
    bundle = build_scene(spec, detail=detail)
    cloud, _ = bundle.frame_cloud(frame)
    projected = project(cloud, bundle.camera)
    return render_reference(projected).image


def evaluate_quality(
    spec_or_name: SceneSpec | str,
    detail: float = 1.0,
    frame: int = 0,
    position_sigma: float = POSITION_SIGMA,
) -> QualityResult:
    """Tab. IV's two-pipeline quality comparison for one scene."""
    spec = CATALOG[spec_or_name] if isinstance(spec_or_name, str) else spec_or_name
    bundle = build_scene(spec, detail=detail)
    cloud, _ = bundle.frame_cloud(frame)
    projected = project(cloud, bundle.camera)
    truth = render_reference(projected).image

    # The "reconstructed" model: the true model plus fitting noise.
    rng = np.random.default_rng(spec.seed + 77_000)
    recon = cloud.perturbed(
        rng,
        position_sigma=position_sigma,
        scale_sigma=SCALE_SIGMA,
        opacity_sigma=OPACITY_SIGMA,
        sh_sigma=SH_SIGMA,
    )
    recon_projected = project(recon, bundle.camera)
    lists = build_render_lists(recon_projected)

    reference_img = render_reference(recon_projected, lists).image
    gbu_img = GBUDevice(config=GBUConfig(fp16=True)).render(recon_projected).image

    return QualityResult(
        scene=spec.name,
        app_type=spec.app_type,
        reference_psnr=psnr(truth, reference_img),
        reference_lpips=lpips_proxy(truth, reference_img),
        gbu_psnr=psnr(truth, gbu_img),
        gbu_lpips=lpips_proxy(truth, gbu_img),
    )


def quality_by_app_type(
    detail: float = 1.0, scenes_per_type: int = 1
) -> dict[AppType, QualityResult]:
    """One representative quality row per application class."""
    picks = {
        AppType.STATIC: "bonsai",
        AppType.DYNAMIC: "flame_steak",
        AppType.AVATAR: "female_4",
    }
    return {
        app: evaluate_quality(name, detail=detail) for app, name in picks.items()
    }
