"""System-level evaluation: every configuration of Tab. V on every
scene of the catalog.

A :class:`SystemConfig` names one point in the design space:

* ``gpu_pfs``   — the baseline (Jetson Orin NX row of Tab. V),
* ``gpu_irss``  — + IRSS dataflow as a CUDA kernel,
* ``gbu_tile``  — + GBU Tile Engine (GPU still bins and sorts; GBU
  blends from conservatively binned lists; no reuse cache),
* ``gbu_dnb``   — + D&B engine (exact binning and transform
  computation move to the GBU; the GPU's Step 2 shrinks to a depth
  sort over Gaussians; chunk pipelining),
* ``gbu_full``  — + Gaussian Reuse Cache (the shipping GBU).

Every configuration is evaluated functionally (the image it would
produce) and temporally (paper-scale frame time via the calibrated
models), plus per-frame energy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.gbu import GBUConfig, GBUDevice, GBUReport
from repro.core.irss import render_irss
from repro.core.pipeline import PipelinedFrame
from repro.errors import ValidationError
from repro.gaussians import build_render_lists, project, render_reference
from repro.gpu import FrameWorkload, GPUTimingModel, ScaleFactors, StageBreakdown
from repro.metrics.energy import EnergyBreakdown, EnergyModel
from repro.scenes import SceneBundle, SceneSpec, build_scene
from repro.scenes.catalog import CATALOG

# Frame-pipeline handshake overhead (GBU_check_status + buffer swap).
SYNC_SECONDS = 2e-4

CONFIG_NAMES = ("gpu_pfs", "gpu_irss", "gbu_tile", "gbu_dnb", "gbu_full")


@dataclass(frozen=True)
class SystemConfig:
    """One row of the ablation: which techniques are active."""

    name: str

    def __post_init__(self) -> None:
        if self.name not in CONFIG_NAMES:
            raise ValidationError(
                f"unknown config '{self.name}'; choose from {CONFIG_NAMES}"
            )

    @property
    def uses_gbu(self) -> bool:
        return self.name.startswith("gbu")

    def gbu_config(self, backend: str | None = None) -> GBUConfig:
        if not self.uses_gbu:
            raise ValidationError(f"{self.name} has no GBU")
        return GBUConfig(
            use_dnb=self.name in ("gbu_dnb", "gbu_full"),
            use_cache=self.name == "gbu_full",
            fp16=True,
            backend=backend,
        )


@dataclass
class SystemResult:
    """Outcome of evaluating one (scene, config) pair.

    Attributes
    ----------
    frame_seconds / fps:
        Paper-scale end-to-end frame timing.
    gpu_seconds:
        GPU-side busy time per frame.
    gbu_seconds:
        GBU-side busy time per frame (0 for GPU-only configs).
    breakdown:
        Per-stage GPU breakdown (GPU-only configs).
    gbu_report:
        GBU engine report (GBU configs).
    energy:
        Per-frame energy breakdown.
    image:
        The frame the configuration actually renders.
    """

    scene: str
    config: SystemConfig
    frame_seconds: float
    gpu_seconds: float
    gbu_seconds: float
    energy: EnergyBreakdown
    image: np.ndarray
    breakdown: StageBreakdown | None = None
    gbu_report: GBUReport | None = None

    @property
    def fps(self) -> float:
        return 1.0 / self.frame_seconds


def evaluate_scene(
    spec_or_name: SceneSpec | str,
    config: SystemConfig | str = "gbu_full",
    frame: int = 0,
    detail: float = 1.0,
    bundle: SceneBundle | None = None,
    backend: str | None = None,
) -> SystemResult:
    """Evaluate one configuration on one scene frame.

    Parameters
    ----------
    spec_or_name:
        Catalog scene (spec or name).
    config:
        System configuration (name or :class:`SystemConfig`).
    frame:
        Animation frame for dynamic/avatar scenes.
    detail:
        Scene detail multiplier (tests use < 1).
    bundle:
        Reuse an already-built scene bundle (avoids regeneration when
        sweeping configurations).
    backend:
        Rendering engine for the functional renders ("reference",
        "vectorized", ...); pixel-exact either way, so results are
        unchanged — only wall-clock differs.  ``None`` uses the
        process default (see :mod:`repro.render.backends`).
    """
    if isinstance(config, str):
        config = SystemConfig(config)
    spec = CATALOG[spec_or_name] if isinstance(spec_or_name, str) else spec_or_name
    if bundle is None:
        bundle = build_scene(spec, detail=detail)
    cloud, extra_flops = bundle.frame_cloud(frame)
    projected = project(cloud, bundle.camera)
    lists = build_render_lists(projected)
    scales = ScaleFactors.for_scene(spec)

    reference = render_reference(projected, lists, backend=backend)
    irss = render_irss(projected, lists, backend=backend)
    workload = FrameWorkload.from_renders(
        reference, irss, lists, len(projected), extra_flops, scales
    )
    gpu_model = GPUTimingModel()
    energy_model = EnergyModel()

    if config.name == "gpu_pfs":
        breakdown = gpu_model.frame_pfs(workload)
        return SystemResult(
            scene=spec.name,
            config=config,
            frame_seconds=breakdown.total_s,
            gpu_seconds=breakdown.total_s,
            gbu_seconds=0.0,
            energy=energy_model.gpu_only_frame(breakdown.total_s),
            image=reference.image,
            breakdown=breakdown,
        )
    if config.name == "gpu_irss":
        breakdown = gpu_model.frame_irss(workload)
        return SystemResult(
            scene=spec.name,
            config=config,
            frame_seconds=breakdown.total_s,
            gpu_seconds=breakdown.total_s,
            gbu_seconds=0.0,
            energy=energy_model.gpu_only_frame(breakdown.total_s),
            image=irss.image,
            breakdown=breakdown,
        )

    # --- GBU configurations ---
    gbu_config = config.gbu_config(backend=backend)
    device = GBUDevice(config=gbu_config)
    report = device.render(
        projected,
        scales=scales,
        lists=None if gbu_config.use_dnb else lists,
    )

    step1_s = gpu_model.step1_seconds(workload)
    if config.gbu_config().use_dnb:
        # D&B moved binning off the GPU: Step 2 is a depth sort over
        # Gaussians, not instances.
        step2_s = gpu_model.step2_seconds(
            workload, keys=workload.n_gaussians, depth_sort_only=True
        )
    else:
        step2_s = gpu_model.step2_seconds(workload)
    gpu_s = step1_s + step2_s

    pipe = PipelinedFrame(
        gpu_seconds=gpu_s,
        gbu_seconds=report.step3_seconds,
        sync_seconds=SYNC_SECONDS,
    )
    energy = energy_model.enhanced_frame(
        pipe.frame_seconds, gpu_s, report.step3_seconds
    )
    return SystemResult(
        scene=spec.name,
        config=config,
        frame_seconds=pipe.frame_seconds,
        gpu_seconds=gpu_s,
        gbu_seconds=report.step3_seconds,
        energy=energy,
        image=report.image,
        gbu_report=report,
    )


def evaluate_all_configs(
    spec_or_name: SceneSpec | str,
    frame: int = 0,
    detail: float = 1.0,
    backend: str | None = None,
) -> dict[str, SystemResult]:
    """Run every Tab. V configuration on one scene, reusing the build."""
    spec = CATALOG[spec_or_name] if isinstance(spec_or_name, str) else spec_or_name
    bundle = build_scene(spec, detail=detail)
    return {
        name: evaluate_scene(
            spec, name, frame=frame, detail=detail, bundle=bundle, backend=backend
        )
        for name in CONFIG_NAMES
    }
