"""Fleet-scale serving: N stream-server nodes behind a global router.

One :class:`~repro.stream.server.StreamServer` is one edge node — a
worker pool, a scheduler, a QoS loop.  The paper's deployment target
(and the roadmap's north star) is many such nodes serving open-loop
user traffic.  :class:`EdgeFleet` adds that layer:

* **Global routing** — arriving sessions (usually from
  :class:`~repro.stream.traffic.TrafficGenerator`) queue at the fleet
  router and are placed on a node with free capacity:
  ``router="least"`` picks the least-loaded node (fewest active
  sessions, then least simulated busy time), ``"affinity"`` prefers a
  node already serving the same scene (bundle and estimate reuse)
  before falling back to least-loaded.
* **Fleet admission control** — each node serves at most
  ``node_capacity`` sessions concurrently; the rest wait in the
  router queue.  Queue depth is the autoscaling signal and is traced
  per tick.
* **Cross-node migration** — when the estimated remaining cost spread
  across nodes exceeds ``migration_threshold`` (relative to the
  mean), one session moves from the most- to the least-loaded node by
  checkpoint replay (:meth:`StreamServer.extract_session` /
  :meth:`StreamServer.inject_session`).  Replay is byte-identical, so
  migration changes *where* frames render, never what they contain.
* **Threshold autoscaling** — a router queue deeper than
  ``scale_up_queue`` for ``sustain`` consecutive ticks spawns a node
  (up to ``max_nodes``); a node idle for ``scale_down_idle`` ticks
  with an empty queue drains (down to ``min_nodes``).  Every action
  is recorded as an :class:`AutoscaleEvent` with its reaction time.

Simulated time: the fleet clock advances to the earliest point the
least-loaded *stepped* node has worked through its issued frames (the
same paper-scale busy accounting workers use), or jumps to the next
arrival when the fleet is idle — deterministic, host-independent, and
composable with every other simulated metric in this repository.
Node-level :class:`~repro.stream.server.ServeSummary` objects merge
into the fleet summary via :meth:`ServeSummary.merge`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.reuse_cache import CacheEconomics
from repro.errors import SimulationError, ValidationError
from repro.stream.content_cache import (
    BundleIntern,
    CacheTier,
    ContentCacheConfig,
    merge_economics,
)
from repro.stream.checkpoint import SessionCheckpoint
from repro.stream.digest import WorkloadModelTable
from repro.stream.pipeline import StreamReport
from repro.stream.reporting import ServeSummary, SessionResult, TickResult
from repro.stream.server import StreamServer, StreamSession
from repro.stream.traffic import SessionArrival

#: Fleet routing policies.  ``"least"`` and ``"affinity"`` weigh
#: estimated remaining cost; ``"active"`` routes on active-session
#: count alone (O(1) per node per arrival — the only policy that holds
#: up at 10^5+ queued arrivals, where cost-model recomputation per
#: routed session dominates the serve).
ROUTERS = ("least", "affinity", "active")


@dataclass(frozen=True)
class NodeMigration:
    """One cross-node session move (checkpoint replay on ``dst``)."""

    session_id: str
    src: int
    dst: int
    tick: int
    sim_time: float


@dataclass(frozen=True)
class AutoscaleEvent:
    """One autoscaling action and the signal that triggered it.

    ``reaction_ticks`` is the fleet's response latency: for a spawn,
    ticks between the queue first breaching the threshold and the node
    coming up; for a drain, the idle streak length that triggered it.
    """

    action: str  # "spawn" | "drain"
    node: int
    tick: int
    sim_time: float
    queue_depth: int
    reaction_ticks: int


@dataclass
class FleetResult:
    """Everything one fleet serve produced.

    ``results`` holds every session exactly once (reported by the node
    that finished it — migrations carry reports along);
    ``node_summaries`` are per-node :class:`ServeSummary` views (one
    per node that ever existed, including drained ones) and
    ``summary`` their :meth:`ServeSummary.merge` composition with
    ``workers`` corrected to the *peak concurrent* capacity —
    autoscale churn can spawn more nodes over a serve's lifetime than
    were ever alive at once.
    """

    results: list[SessionResult]
    summary: ServeSummary
    node_summaries: dict[int, ServeSummary]
    migrations: list[NodeMigration] = field(default_factory=list)
    autoscale_events: list[AutoscaleEvent] = field(default_factory=list)
    queue_depth_trace: list[int] = field(default_factory=list)
    admission_delays: dict[str, float] = field(default_factory=dict)
    ticks: int = 0
    #: Maximum number of simultaneously-alive nodes during the serve.
    peak_nodes: int = 0
    #: Maximum number of concurrently admitted sessions across the
    #: fleet (the headline scale number for digest-mode benchmarks).
    peak_active: int = 0
    #: Per-tick concurrently admitted session counts (post-routing),
    #: aligned with ``queue_depth_trace``.
    active_trace: list[int] = field(default_factory=list)
    #: Fleet-wide per-tier content-cache economics (session → worker →
    #: node → fleet), summed over every node; empty without a content
    #: cache.
    content: dict[str, CacheEconomics] = field(default_factory=dict)
    #: Scene-bundle interning counters (shared immutable bundles
    #: across co-located workers); zero without a content cache.
    bundle_intern_hits: int = 0
    bundle_intern_misses: int = 0

    @property
    def total_frames(self) -> int:
        return self.summary.total_frames

    @property
    def sim_frames_per_sec(self) -> float:
        return self.summary.sim_frames_per_sec

    @property
    def total_nodes(self) -> int:
        """Nodes that ever existed (spawned ones included)."""
        return len(self.node_summaries)

    @property
    def spawns(self) -> list[AutoscaleEvent]:
        return [e for e in self.autoscale_events if e.action == "spawn"]

    @property
    def drains(self) -> list[AutoscaleEvent]:
        return [e for e in self.autoscale_events if e.action == "drain"]

    @property
    def max_queue_depth(self) -> int:
        return max(self.queue_depth_trace, default=0)

    @property
    def mean_admission_delay(self) -> float:
        if not self.admission_delays:
            return 0.0
        delays = list(self.admission_delays.values())
        return float(sum(delays) / len(delays))


class _FleetNode:
    """One live node: a server plus the router's bookkeeping.

    ``clock_offset`` anchors the node's busy ledger to absolute fleet
    time: a node spawned at fleet clock C starts counting busy seconds
    from zero, so its absolute serving horizon is
    ``clock_offset + busy_makespan``.
    """

    def __init__(
        self,
        node_id: int,
        server: StreamServer,
        tick: int,
        clock_offset: float = 0.0,
    ) -> None:
        self.node_id = node_id
        self.server = server
        self.spawned_tick = tick
        self.clock_offset = clock_offset
        self.idle_ticks = 0
        self.alive = True

    @property
    def horizon(self) -> float:
        """Absolute fleet time this node has worked up to."""
        return self.clock_offset + self.server.busy_makespan


@dataclass
class _OpenFleetServe:
    """Mutable state of one open (incremental) fleet serve.

    Everything that used to live as locals of the closed ``serve``
    loop, lifted onto the fleet so :meth:`EdgeFleet.step` can run one
    tick at a time — the serving gateway drives real client arrivals
    through exactly the loop body the batch path uses, so both produce
    byte-identical streams.
    """

    pending: list[SessionArrival]
    wall0: float
    queue: list[SessionArrival] = field(default_factory=list)
    clock: float = 0.0
    tick: int = 0
    cursor: int = 0
    breach_start: int | None = None
    migrations: list[NodeMigration] = field(default_factory=list)
    events: list[AutoscaleEvent] = field(default_factory=list)
    queue_trace: list[int] = field(default_factory=list)
    active_trace: list[int] = field(default_factory=list)
    admission_delays: dict[str, float] = field(default_factory=dict)
    finished: dict[int, tuple[list[SessionResult], ServeSummary]] = field(
        default_factory=dict
    )
    #: Submission order of every session ever seen (result sort key).
    order: dict[str, int] = field(default_factory=dict)
    total_frames: int = 0
    n_arrivals: int = 0
    peak_nodes: int = 0
    #: Set when a tick ends with nothing stepped, nothing queued, and
    #: no pending arrivals — the batch loop's stop signal.  A later
    #: :meth:`EdgeFleet.submit` clears it (gateway traffic is open-
    #: ended).
    drained: bool = False
    #: Ticks that rendered nothing because gateway flow control paused
    #: the admitted sessions (slow clients).  Excused from the tick
    #: budget: a stalled reader can idle an open serve indefinitely,
    #: and that is backpressure working, not a scheduler livelock.
    flow_stalls: int = 0

    @property
    def max_ticks(self) -> int:
        return self.total_frames + 2 * self.n_arrivals + 64


class EdgeFleet:
    """Serve open-loop session traffic over a fleet of server nodes.

    Parameters
    ----------
    nodes:
        Initial node count.
    node_workers:
        Workers per node (each node is a deterministic in-process
        multi-worker :class:`StreamServer`, ``local=True``).
    router:
        Node-selection policy: ``"least"`` or ``"affinity"``.
    node_capacity:
        Max concurrent sessions per node (fleet admission control).
    placement:
        Intra-node session→worker policy (``"load"``/``"rr"``).
    min_nodes / max_nodes:
        Autoscaling band; both default to ``nodes`` (autoscaling off).
    scale_up_queue:
        Router queue depth that (sustained) triggers a spawn; defaults
        to ``node_capacity``.
    sustain:
        Consecutive breached ticks required before spawning.
    scale_down_idle:
        Consecutive idle ticks (with an empty queue) before a node
        drains.
    migration:
        Enable cross-node checkpoint-replay rebalancing.
    migration_threshold:
        Relative remaining-cost spread (vs. the mean) above which one
        session migrates per tick.
    fault_injector:
        Chaos hook ``(node, tick, worker) -> bool`` forwarded to each
        node's server (node-local tick counter), exercising worker
        recovery inside a fleet serve.
    bundle_cache_size:
        Per-worker bundle LRU capacity, forwarded to the nodes.
    content_cache:
        Enable the fleet-wide content-addressed render cache
        (:mod:`repro.stream.content_cache`).  The fleet owns the
        top-level fleet tier and the cross-worker scene-bundle
        interner; every spawned node's server chains its node tier to
        the fleet tier, so co-located viewers dedup across nodes.
        Per-tier economics land on :attr:`FleetResult.content`.
    models:
        Calibrated :class:`~repro.stream.digest.WorkloadModelTable`
        forwarded to every node's server; required before any
        submitted session may request ``pipeline="digest"``.
    """

    def __init__(
        self,
        nodes: int = 2,
        node_workers: int = 1,
        router: str = "least",
        node_capacity: int = 4,
        placement: str = "load",
        min_nodes: int | None = None,
        max_nodes: int | None = None,
        scale_up_queue: int | None = None,
        sustain: int = 2,
        scale_down_idle: int = 4,
        migration: bool = True,
        migration_threshold: float = 0.5,
        fault_injector=None,
        bundle_cache_size: int = 8,
        content_cache: ContentCacheConfig | None = None,
        models: WorkloadModelTable | None = None,
    ) -> None:
        if nodes < 1:
            raise ValidationError("fleet needs at least one node")
        if node_workers < 1:
            raise ValidationError("nodes need at least one worker")
        if router not in ROUTERS:
            raise ValidationError(
                f"unknown router '{router}'; choose from " + ", ".join(ROUTERS)
            )
        if node_capacity < 1:
            raise ValidationError("node capacity must be at least 1")
        self.min_nodes = nodes if min_nodes is None else min_nodes
        self.max_nodes = nodes if max_nodes is None else max_nodes
        if not 1 <= self.min_nodes <= nodes <= self.max_nodes:
            raise ValidationError(
                "autoscale band needs 1 <= min_nodes <= nodes <= max_nodes"
            )
        self.scale_up_queue = (
            node_capacity if scale_up_queue is None else scale_up_queue
        )
        if self.scale_up_queue < 1:
            raise ValidationError("scale_up_queue must be at least 1")
        if sustain < 1:
            raise ValidationError("sustain must be at least 1")
        if scale_down_idle < 1:
            raise ValidationError("scale_down_idle must be at least 1")
        if migration_threshold <= 0:
            raise ValidationError("migration threshold must be positive")
        self.initial_nodes = nodes
        self.node_workers = node_workers
        self.router = router
        self.node_capacity = node_capacity
        self.placement = placement
        self.sustain = sustain
        self.scale_down_idle = scale_down_idle
        self.migration = migration
        self.migration_threshold = migration_threshold
        self.fault_injector = fault_injector
        self.bundle_cache_size = bundle_cache_size
        self.content_cache = content_cache
        self.models = models
        self._fleet_tier: CacheTier | None = None
        self._intern: BundleIntern | None = None
        if content_cache is not None:
            self._fleet_tier = CacheTier("fleet", content_cache.fleet_bytes)
            self._intern = BundleIntern()
        self._content_totals: dict[str, CacheEconomics] = {}
        self._nodes: list[_FleetNode] = []
        self._next_node_id = 0
        self._open: _OpenFleetServe | None = None

    # -- lifecycle ------------------------------------------------------
    def __enter__(self) -> "EdgeFleet":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Shut down every node's worker pool (idempotent)."""
        for node in self._nodes:
            node.server.close()
        self._nodes = []
        self._open = None

    def _spawn_node(self, tick: int, clock: float = 0.0) -> _FleetNode:
        node_id = self._next_node_id
        self._next_node_id += 1
        injector = None
        if self.fault_injector is not None:
            hook = self.fault_injector
            injector = lambda t, w, n=node_id: hook(n, t, w)  # noqa: E731
        server = StreamServer(
            workers=self.node_workers,
            placement=self.placement,
            local=True,
            fault_injector=injector,
            bundle_cache_size=self.bundle_cache_size,
            content_cache=self.content_cache,
            content_parent=self._fleet_tier,
            bundle_builder=self._intern.build if self._intern is not None else None,
            models=self.models,
        )
        server.begin([])
        node = _FleetNode(node_id, server, tick, clock_offset=clock)
        self._nodes.append(node)
        return node

    # -- routing --------------------------------------------------------
    def _alive(self) -> list[_FleetNode]:
        return [n for n in self._nodes if n.alive]

    def _has_capacity(self, node: _FleetNode) -> bool:
        return node.server.n_active < self.node_capacity

    def _route(
        self,
        queue: list[SessionArrival],
        clock: float,
        admission_delays: dict[str, float],
    ) -> list[SessionArrival]:
        """Place queued sessions onto nodes with capacity (FIFO).

        Returns the arrivals still waiting; admitted sessions record
        their router-queue delay in simulated seconds.  Routing stops
        scanning at the first arrival no node can take *only* when the
        whole fleet is saturated: today ``_select_node`` returns
        ``None`` exactly when every node is at capacity (the affinity
        scene filter narrows the choice among open nodes but never
        empties it), so the rest of the queue cannot be placed either —
        a thundering herd of 10^5 arrivals must not be re-scanned in
        full on every saturated tick.  The saturation re-check guards
        that invariant: if selection ever becomes genuinely
        session-dependent (returning ``None`` for one session while
        capacity remains), only *that* arrival parks and the scan
        continues, so a placeable arrival is never stranded behind an
        unplaceable one.  Pinned by
        ``tests/stream/test_fleet.py::test_route_invariants``.
        """
        still_queued: list[SessionArrival] = []
        for i, arrival in enumerate(queue):
            node = self._select_node(arrival.session)
            if node is None:
                if not any(self._has_capacity(n) for n in self._alive()):
                    # Fleet saturated: bulk-requeue the tail unscanned.
                    still_queued.extend(queue[i:])
                    break
                # Session-specific refusal with capacity left: park it,
                # keep FIFO order for the rest of the scan.
                still_queued.append(arrival)
                continue
            node.server.submit(arrival.session)
            admission_delays[arrival.session_id] = max(
                clock - arrival.time, 0.0
            )
        return still_queued

    def _select_node(self, session: StreamSession) -> _FleetNode | None:
        """Pick the node a queued session routes to (None: no capacity)."""
        open_nodes = [n for n in self._alive() if self._has_capacity(n)]
        if not open_nodes:
            return None
        if self.router == "active":
            # Count-only balancing: no cost-model query, so routing one
            # arrival is O(nodes) with a trivial constant.
            return min(
                open_nodes, key=lambda n: (n.server.n_active, n.node_id)
            )
        if self.router == "affinity":
            same_scene = [
                n for n in open_nodes if session.scene in n.server.active_scenes()
            ]
            if same_scene:
                open_nodes = same_scene
        return min(
            open_nodes,
            key=lambda n: (
                n.server.n_active,
                n.server.remaining_cost(),
                n.node_id,
            ),
        )

    # -- rebalancing ----------------------------------------------------
    def _rebalance(
        self, tick: int, clock: float, migrations: list[NodeMigration]
    ) -> None:
        """Move one session from the most- to the least-loaded node."""
        alive = self._alive()
        if len(alive) < 2:
            return
        costs = {n.node_id: n.server.remaining_cost() for n in alive}
        total = sum(costs.values())
        if total <= 0:
            return
        mean = total / len(alive)
        src = max(alive, key=lambda n: (costs[n.node_id], -n.node_id))
        dst = min(alive, key=lambda n: (costs[n.node_id], n.node_id))
        gap = costs[src.node_id] - costs[dst.node_id]
        if gap / mean <= self.migration_threshold:
            return
        if not self._has_capacity(dst):
            return
        # Largest session that still fits in the gap (strict improvement).
        for session_id, cost in src.server.migration_candidates():
            if 0.0 < cost < gap:
                session, ckpt, report = src.server.extract_session(session_id)
                dst.server.inject_session(session, ckpt, report)
                migrations.append(
                    NodeMigration(
                        session_id=session_id,
                        src=src.node_id,
                        dst=dst.node_id,
                        tick=tick,
                        sim_time=clock,
                    )
                )
                return

    # -- serving --------------------------------------------------------
    def serve_sessions(self, sessions: list[StreamSession]) -> FleetResult:
        """Serve a closed session list (everything arrives at t=0)."""
        return self.serve([SessionArrival(0.0, s) for s in sessions])

    def serve(self, arrivals: list[SessionArrival]) -> FleetResult:
        """Serve an open-loop arrival sequence to completion.

        A thin wrapper over the incremental protocol: :meth:`begin`,
        :meth:`step` until drained, :meth:`finish`.  The loop per tick:
        admit due arrivals into the router queue, route queued sessions
        onto nodes with capacity, autoscale on the sustained queue
        signal, step every node with work one tick (one frame per
        admitted session), rebalance, then advance the fleet clock.
        Returns once every session has drained.
        """
        self.begin(arrivals)
        try:
            while not self._open.drained:
                self.step()
            return self.finish()
        except BaseException:
            self.close()
            raise

    # -- incremental serving --------------------------------------------
    @property
    def serving(self) -> bool:
        """A fleet serve is open (between :meth:`begin`/:meth:`finish`)."""
        return self._open is not None

    def _require_open(self, what: str) -> _OpenFleetServe:
        if self._open is None:
            raise ValidationError(
                f"{what} requires an open fleet serve (begin first)"
            )
        return self._open

    def begin(self, arrivals: list[SessionArrival] | None = None) -> None:
        """Open an incremental fleet serve.

        Mirrors :meth:`StreamServer.begin`: the caller drives ticks
        with :meth:`step`, may :meth:`submit` sessions at any point
        (the serving gateway submits one per accepted connection), and
        collects results with :meth:`finish`.  ``arrivals`` seeds the
        schedule with timestamped open-loop traffic; live traffic
        starts empty.
        """
        if self.serving:
            raise ValidationError("a fleet serve is already open")
        pending = sorted(arrivals or [], key=lambda a: a.time)
        ids = [a.session_id for a in pending]
        if len(set(ids)) != len(ids):
            raise ValidationError("session ids must be unique across arrivals")
        wall0 = time.perf_counter()
        self.close()
        self._next_node_id = 0
        if self._fleet_tier is not None:
            self._fleet_tier.clear()
        if self._intern is not None:
            self._intern.clear()
        self._content_totals = {}
        for _ in range(self.initial_nodes):
            self._spawn_node(tick=0)
        self._open = _OpenFleetServe(
            pending=pending,
            wall0=wall0,
            order={a.session_id: i for i, a in enumerate(pending)},
            total_frames=sum(a.session.frame_budget for a in pending),
            n_arrivals=len(pending),
            peak_nodes=len(self._alive()),
        )

    def submit(self, session: StreamSession, at: float | None = None) -> None:
        """Enqueue a session on the open serve's router.

        ``at`` is the arrival's simulated timestamp and defaults to the
        current fleet clock (a live connection arrives *now*).  The
        session joins the router queue and is placed on the next tick
        under the normal capacity/routing rules.
        """
        st = self._require_open("submit")
        session_id = session.session_id
        if session_id in st.order:
            raise ValidationError(
                f"session id '{session_id}' was already submitted"
            )
        st.order[session_id] = len(st.order)
        st.total_frames += session.frame_budget
        st.n_arrivals += 1
        st.queue.append(
            SessionArrival(st.clock if at is None else float(at), session)
        )
        st.drained = False

    def step(self) -> TickResult:
        """Run one fleet tick; returns the nodes' merged tick result.

        The loop body of the historical closed ``serve`` — admission,
        routing, autoscaling, node stepping, idle drains, rebalancing,
        clock advance — executed exactly once.  Returns an empty
        :class:`TickResult` once the serve has drained (no active
        sessions, empty router queue, no pending arrivals); a later
        :meth:`submit` re-opens the tap.
        """
        st = self._require_open("step")
        if st.drained:
            return TickResult()
        if st.tick - st.flow_stalls > st.max_ticks:
            raise SimulationError(
                "fleet serve did not drain within its tick budget"
            )
        # 1. Admit arrivals whose time has come.
        while (
            st.cursor < len(st.pending)
            and st.pending[st.cursor].time <= st.clock
        ):
            st.queue.append(st.pending[st.cursor])
            st.cursor += 1
        # 2. Route queued sessions onto nodes with capacity.  The
        # per-tick trace records the depth *after* routing — the
        # autoscaling signal.
        st.queue = self._route(st.queue, st.clock, st.admission_delays)
        st.queue_trace.append(len(st.queue))
        # 3. Autoscale on the sustained queue-depth signal (at most
        # one spawn per tick; the new node is filled immediately at
        # the same clock and steps below with everyone else).
        if len(st.queue) >= self.scale_up_queue:
            if st.breach_start is None:
                st.breach_start = st.tick
            sustained = st.tick - st.breach_start + 1
            if (
                sustained >= self.sustain
                and len(self._alive()) < self.max_nodes
            ):
                node = self._spawn_node(st.tick, clock=st.clock)
                st.events.append(
                    AutoscaleEvent(
                        action="spawn",
                        node=node.node_id,
                        tick=st.tick,
                        sim_time=st.clock,
                        queue_depth=len(st.queue),
                        reaction_ticks=st.tick - st.breach_start,
                    )
                )
                st.breach_start = None
                st.queue = self._route(st.queue, st.clock, st.admission_delays)
        else:
            st.breach_start = None
        st.peak_nodes = max(st.peak_nodes, len(self._alive()))
        # Post-routing fleet concurrency: how many sessions are
        # admitted somewhere right now (the scale headline).
        st.active_trace.append(sum(n.server.n_active for n in self._alive()))
        # 4. Step every node that has work.
        stepped: list[_FleetNode] = []
        node_ticks: list[TickResult] = []
        for node in self._alive():
            if node.server.n_active > 0:
                node_ticks.append(node.server.step())
                node.idle_ticks = 0
                stepped.append(node)
            else:
                node.idle_ticks += 1
        # 5. Drain long-idle nodes while the queue is empty.
        if not st.queue and len(self._alive()) > self.min_nodes:
            for node in self._alive():
                if node.idle_ticks >= self.scale_down_idle:
                    st.finished[node.node_id] = self._retire(node)
                    st.events.append(
                        AutoscaleEvent(
                            action="drain",
                            node=node.node_id,
                            tick=st.tick,
                            sim_time=st.clock,
                            queue_depth=0,
                            reaction_ticks=node.idle_ticks,
                        )
                    )
                    break  # at most one scale-down per tick
        # 6. Cross-node rebalancing.
        if self.migration:
            self._rebalance(st.tick, st.clock, st.migrations)
        # 7. Advance the fleet clock to the earliest absolute time
        # a stepped node has worked through its issued frames
        # (node horizons anchor busy ledgers at spawn time, so a
        # freshly spawned node never drags the clock backwards).
        if stepped:
            candidate = min(n.horizon for n in stepped)
            if st.cursor < len(st.pending) and any(
                self._has_capacity(n) for n in self._alive()
            ):
                candidate = min(candidate, st.pending[st.cursor].time)
            st.clock = max(st.clock, candidate)
        elif st.cursor < len(st.pending):
            st.clock = max(st.clock, st.pending[st.cursor].time)
        elif not st.queue:
            st.drained = True
            return TickResult.merged(node_ticks)
        # 8. Re-anchor caught-up nodes to the present: a node whose
        # horizon fell behind the clock (it sat idle through a
        # jumped gap, or drained its issued work early) cannot
        # serve in the past — its next frame completes after *now*.
        # Without this, arrivals after an idle gap would wait for
        # busy ledgers to catch up to absolute time and serialize.
        for node in self._alive():
            if node.horizon < st.clock:
                node.clock_offset = st.clock - node.server.busy_makespan
        merged = TickResult.merged(node_ticks)
        if (
            not merged.frames
            and not merged.done
            and any(n.server.paused_sessions for n in self._alive())
        ):
            # Nothing rendered and at least one session is paused by
            # gateway flow control: a stall tick, not budget-billable
            # progress (the budget exists to catch scheduler livelock,
            # not slow readers — see ``flow_stalls``).
            st.flow_stalls += 1
        st.tick += 1
        return merged

    def finish(self) -> FleetResult:
        """Close the open serve and assemble the :class:`FleetResult`."""
        st = self._require_open("finish")
        wall = time.perf_counter() - st.wall0
        for node in list(self._nodes):
            if node.alive:
                st.finished[node.node_id] = self._retire(node, wall=wall)
        results: list[SessionResult] = []
        node_summaries: dict[int, ServeSummary] = {}
        for node_id in sorted(st.finished):
            node_results, summary = st.finished[node_id]
            results.extend(node_results)
            node_summaries[node_id] = summary
        self._nodes = []
        results.sort(key=lambda r: st.order[r.session_id])
        fleet_summary = ServeSummary.merge(list(node_summaries.values()))
        fleet_summary.wall_seconds = wall
        fleet_summary.migrations += len(st.migrations)
        # Worker capacity is what was ever alive *at once*, not the
        # sum over autoscale churn.
        fleet_summary.workers = st.peak_nodes * self.node_workers
        result = FleetResult(
            results=results,
            summary=fleet_summary,
            node_summaries=node_summaries,
            migrations=st.migrations,
            autoscale_events=st.events,
            queue_depth_trace=st.queue_trace,
            admission_delays=st.admission_delays,
            ticks=st.tick,
            peak_nodes=st.peak_nodes,
            peak_active=max(st.active_trace, default=0),
            active_trace=st.active_trace,
            content=dict(self._content_totals),
            bundle_intern_hits=self._intern.hits if self._intern else 0,
            bundle_intern_misses=self._intern.misses if self._intern else 0,
        )
        self._open = None
        return result

    # -- session forwarding (gateway surface) ---------------------------
    @property
    def n_active(self) -> int:
        """Sessions admitted on some alive node right now."""
        return sum(n.server.n_active for n in self._alive())

    @property
    def n_queued(self) -> int:
        """Sessions waiting at the router or in node admission queues."""
        queued = sum(n.server.n_queued for n in self._alive())
        if self._open is not None:
            queued += len(self._open.queue)
            queued += len(self._open.pending) - self._open.cursor
        return queued

    def _node_of(self, session_id: str) -> _FleetNode | None:
        for node in self._alive():
            if node.server.has_session(session_id):
                return node
        return None

    def has_session(self, session_id: str) -> bool:
        """Whether the open serve tracks ``session_id`` anywhere."""
        if not self.serving:
            return False
        if self._node_of(session_id) is not None:
            return True
        return any(a.session_id == session_id for a in self._open.queue)

    def is_done(self, session_id: str) -> bool:
        """Whether a tracked session has exhausted its frame budget."""
        node = self._node_of(session_id)
        if node is not None:
            return node.server.is_done(session_id)
        if self.has_session(session_id):
            return False  # still waiting at the router
        raise ValidationError(f"unknown session '{session_id}'")

    def pause_session(self, session_id: str) -> None:
        """Forward gateway backpressure to the session's node.

        A session still waiting at the router is a no-op (it renders
        nothing anyway); an unknown session raises.
        """
        node = self._node_of(session_id)
        if node is not None:
            node.server.pause_session(session_id)
        elif not self.has_session(session_id):
            raise ValidationError(f"unknown session '{session_id}'")

    def resume_session(self, session_id: str) -> None:
        """Re-enable dispatch for a paused session (idempotent)."""
        node = self._node_of(session_id)
        if node is not None:
            node.server.resume_session(session_id)
        elif not self.has_session(session_id):
            raise ValidationError(f"unknown session '{session_id}'")

    def report_of(self, session_id: str) -> StreamReport:
        """The frames streamed so far for a node-admitted session."""
        node = self._node_of(session_id)
        if node is None:
            raise ValidationError(f"unknown session '{session_id}'")
        return node.server.report_of(session_id)

    def extract_session(
        self, session_id: str
    ) -> tuple[StreamSession, SessionCheckpoint | None, StreamReport]:
        """Remove a session from the open serve (gateway disconnect).

        A session already admitted on a node extracts with its
        checkpoint and report; one still waiting at the router leaves
        with no checkpoint and an empty report.
        """
        st = self._require_open("extract")
        node = self._node_of(session_id)
        if node is not None:
            return node.server.extract_session(session_id)
        for i, arrival in enumerate(st.queue):
            if arrival.session_id == session_id:
                st.queue.pop(i)
                session = arrival.session
                report = StreamReport(
                    scene=session.scene, trajectory=session.trajectory.kind
                )
                return session, None, report
        raise ValidationError(f"unknown session '{session_id}'")

    def inject_session(
        self,
        session: StreamSession,
        checkpoint: SessionCheckpoint | None = None,
        report: StreamReport | None = None,
    ) -> int:
        """Resume an extracted session (gateway reconnect).

        Routed like a fresh arrival when capacity allows; a saturated
        fleet readmits on the least-active node anyway — the client
        was already admitted before it disconnected, and a reconnect
        must never be refused by its own admission control.  Returns
        the node the session landed on.
        """
        st = self._require_open("inject")
        node = self._select_node(session)
        if node is None:
            node = min(
                self._alive(), key=lambda n: (n.server.n_active, n.node_id)
            )
        node.server.inject_session(session, checkpoint, report)
        st.order.setdefault(session.session_id, len(st.order))
        st.drained = False
        return node.node_id

    def _retire(
        self, node: _FleetNode, wall: float = 0.0
    ) -> tuple[list[SessionResult], ServeSummary]:
        """Finish a node's open serve and fold it into a summary."""
        merge_economics(self._content_totals, node.server.content_totals)
        results = node.server.finish()
        summary = ServeSummary.from_results(
            results,
            workers=self.node_workers,
            wall_seconds=wall,
            recoveries=node.server.recoveries,
            migrations=len(node.server.migrations),
            busy_seconds=node.server.worker_busy_seconds or None,
        )
        node.server.close()
        node.alive = False
        return results, summary
