"""Lightweight session checkpoints for crash recovery and migration.

A :class:`SessionCheckpoint` is everything the serving layer needs to
resume a stream session on a *different* worker (or a respawned one)
with byte-identical output:

* **trajectory cursor** — the next frame index to render;
* **warm-binner frame key** — the last frame's camera/clock identity,
  kept as telemetry (the binner's instance arrays are *not* shipped:
  warm binning is exact, so a cold binner reproduces the same render
  lists and images, it merely reports a lower
  ``BinningStats.reuse_fraction`` on the first recovered frame);
* **temporal cache resident set** — the
  :class:`~repro.core.reuse_cache.TemporalCacheState` snapshot
  (resident line ids + cumulative counters), which *does* shape every
  later frame's hit rates, memory traffic, and therefore simulated
  latency.

Checkpoints travel from worker to server on every successful tick and
back to a worker on restore, so the only state lost in a crash is the
tick in flight — which the server simply re-renders (deterministically)
after replaying the checkpoint.

Recovery invariant: a session restored from the checkpoint of frame
``k-1`` renders frames ``k, k+1, ...`` byte-identical (images,
``sim_seconds``, per-frame and cumulative cache hit rates) to an
uninterrupted run.  Asserted in ``tests/stream/test_checkpoint.py``
and the worker-crash tests of ``tests/stream/test_stream_server.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.reuse_cache import TemporalCacheState
from repro.errors import ValidationError
from repro.stream.pipeline import FramePipeline
from repro.stream.qos import QoSControllerState


@dataclass(frozen=True)
class SessionCheckpoint:
    """Snapshot of one stream session's cross-frame state.

    Attributes
    ----------
    session_id:
        The session this checkpoint belongs to.
    scene / detail:
        Scene identity.  :func:`restore_checkpoint` validates the
        scene; the server additionally matches ``session_id`` and
        ``detail`` against the descriptor before replaying, so a
        checkpoint is never applied to the wrong stream.
    next_frame:
        Trajectory cursor: the first frame the restored session will
        render.
    frame_key:
        The warm binner's last frame key (camera fingerprint + scene
        clock); informational/telemetry — replay correctness does not
        depend on it because warm binning is exact from cold state.
    cache:
        Exported temporal reuse-cache state (resident set + cumulative
        counters).
    active_detail:
        Absolute detail of the last rendered frame's scene bundle.
        Equal to ``detail`` for fixed-quality sessions; under QoS it is
        whatever rung the controller had reached, and restore reloads
        that bundle so the *next* frame flushes the cache only if the
        controller actually changes rung — exactly as the
        uninterrupted run would.
    qos:
        Exported :class:`~repro.stream.qos.QualityController` state
        (``None`` for sessions without QoS).  Replaying it makes the
        recovered session walk the identical detail ladder, so the
        per-frame detail trace — and everything downstream of it —
        stays byte-identical.
    """

    session_id: str
    scene: str
    detail: float
    next_frame: int
    # Telemetry only: warm binning is exact from cold state, so replay
    # correctness never consults the last frame key (class docstring).
    frame_key: tuple | None  # analyze: allow[CKPT202] telemetry-only field
    cache: TemporalCacheState
    active_detail: float | None = None
    qos: QoSControllerState | None = None

    @property
    def resident_lines(self) -> int:
        return self.cache.resident_lines

    def belongs_to(self, session) -> bool:
        """Whether this checkpoint snapshots ``session``'s stream.

        Matches identity (``session_id``), scene, and the *nominal*
        detail — the three fields that make replaying a checkpoint
        onto the wrong stream unrecoverable.  Used by worker-respawn
        restore and by cross-server session injection
        (:meth:`~repro.stream.server.StreamServer.inject_session`).
        """
        return (
            self.session_id == session.session_id
            and self.scene == session.scene
            and self.detail == session.detail
        )


def capture_checkpoint(
    session_id: str, stream: FramePipeline, detail: float = 1.0
) -> SessionCheckpoint:
    """Snapshot a session's stream state after its latest frame."""
    return SessionCheckpoint(
        session_id=session_id,
        scene=stream.spec.name,
        detail=detail,
        next_frame=stream.frames_rendered,
        frame_key=stream.frame_key,
        cache=stream.cache_state.export_state(),
        active_detail=stream.active_detail,
        qos=(
            stream.controller.export_state()
            if stream.controller is not None
            else None
        ),
    )


def restore_checkpoint(
    stream: FramePipeline, checkpoint: SessionCheckpoint
) -> None:
    """Replay a checkpoint onto a freshly built pipeline stream.

    The stream must target the checkpoint's scene; its cache simulator
    must match the exported policy/geometry (enforced by
    :meth:`~repro.core.reuse_cache.TemporalReuseSimulator.import_state`).
    After this call, ``stream.render_next()`` produces frame
    ``checkpoint.next_frame`` exactly as the uninterrupted session
    would have.
    """
    if stream.spec.name != checkpoint.scene:
        raise ValidationError(
            f"checkpoint of session '{checkpoint.session_id}' was taken on "
            f"scene '{checkpoint.scene}', stream renders '{stream.spec.name}'"
        )
    if (checkpoint.qos is not None) != (stream.controller is not None):
        raise ValidationError(
            f"checkpoint of session '{checkpoint.session_id}' and the "
            "restored stream disagree about QoS control"
        )
    stream.cache_state.import_state(checkpoint.cache)
    if checkpoint.qos is not None:
        stream.controller.import_state(checkpoint.qos)
    active = (
        checkpoint.detail
        if checkpoint.active_detail is None
        else checkpoint.active_detail
    )
    if active != stream.active_detail:
        # Reload the rung the session was on when checkpointed — the
        # imported cache state belongs to that bundle, and the next
        # frame must flush only on a *real* rung change.
        stream.load_detail(active)
    binner = getattr(stream, "binner", None)
    if binner is not None:
        # Exact pipeline only: warm binning is exact from cold state,
        # so the binner restarts cold (digest streams have no binner).
        binner.reset()
    stream.seek(checkpoint.next_frame)
