"""Lightweight session checkpoints for crash recovery and migration.

A :class:`SessionCheckpoint` is everything the serving layer needs to
resume a stream session on a *different* worker (or a respawned one)
with byte-identical output:

* **trajectory cursor** — the next frame index to render;
* **warm-binner frame key** — the last frame's camera/clock identity,
  kept as telemetry (the binner's instance arrays are *not* shipped:
  warm binning is exact, so a cold binner reproduces the same render
  lists and images, it merely reports a lower
  ``BinningStats.reuse_fraction`` on the first recovered frame);
* **temporal cache resident set** — the
  :class:`~repro.core.reuse_cache.TemporalCacheState` snapshot
  (resident line ids + cumulative counters), which *does* shape every
  later frame's hit rates, memory traffic, and therefore simulated
  latency.

Checkpoints travel from worker to server on every successful tick and
back to a worker on restore, so the only state lost in a crash is the
tick in flight — which the server simply re-renders (deterministically)
after replaying the checkpoint.

Recovery invariant: a session restored from the checkpoint of frame
``k-1`` renders frames ``k, k+1, ...`` byte-identical (images,
``sim_seconds``, per-frame and cumulative cache hit rates) to an
uninterrupted run.  Asserted in ``tests/stream/test_checkpoint.py``
and the worker-crash tests of ``tests/stream/test_stream_server.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.core.reuse_cache import TemporalCacheState
from repro.errors import ValidationError
from repro.stream.pipeline import FramePipeline
from repro.stream.qos import QoSControllerState

#: Serialization format version written by :func:`checkpoint_to_dict`.
#:
#: * **v1** (pre-PR-9, implicit — blobs without a ``version`` key):
#:   no QoS shard-escalation counters (``shards`` / ``floor_misses`` /
#:   ``comfortable_streak``), and ``active_detail`` / ``qos`` may be
#:   absent entirely.  Restored with the legacy defaults.
#: * **v2** (current): all fields explicit.
#:
#: Blobs newer than this build understands are rejected with
#: :class:`~repro.errors.ValidationError` instead of being silently
#: misread.
CHECKPOINT_FORMAT_VERSION = 2


@dataclass(frozen=True)
class SessionCheckpoint:
    """Snapshot of one stream session's cross-frame state.

    Attributes
    ----------
    session_id:
        The session this checkpoint belongs to.
    scene / detail:
        Scene identity.  :func:`restore_checkpoint` validates the
        scene; the server additionally matches ``session_id`` and
        ``detail`` against the descriptor before replaying, so a
        checkpoint is never applied to the wrong stream.
    next_frame:
        Trajectory cursor: the first frame the restored session will
        render.
    frame_key:
        The warm binner's last frame key (camera fingerprint + scene
        clock); informational/telemetry — replay correctness does not
        depend on it because warm binning is exact from cold state.
    cache:
        Exported temporal reuse-cache state (resident set + cumulative
        counters).
    active_detail:
        Absolute detail of the last rendered frame's scene bundle.
        Equal to ``detail`` for fixed-quality sessions; under QoS it is
        whatever rung the controller had reached, and restore reloads
        that bundle so the *next* frame flushes the cache only if the
        controller actually changes rung — exactly as the
        uninterrupted run would.
    qos:
        Exported :class:`~repro.stream.qos.QualityController` state
        (``None`` for sessions without QoS).  Replaying it makes the
        recovered session walk the identical detail ladder, so the
        per-frame detail trace — and everything downstream of it —
        stays byte-identical.
    """

    session_id: str
    scene: str
    detail: float
    next_frame: int
    # Telemetry only: warm binning is exact from cold state, so replay
    # correctness never consults the last frame key (class docstring).
    frame_key: tuple | None  # analyze: allow[CKPT202] telemetry-only field
    cache: TemporalCacheState
    active_detail: float | None = None
    qos: QoSControllerState | None = None

    @property
    def resident_lines(self) -> int:
        return self.cache.resident_lines

    def belongs_to(self, session) -> bool:
        """Whether this checkpoint snapshots ``session``'s stream.

        Matches identity (``session_id``), scene, and the *nominal*
        detail — the three fields that make replaying a checkpoint
        onto the wrong stream unrecoverable.  Used by worker-respawn
        restore and by cross-server session injection
        (:meth:`~repro.stream.server.StreamServer.inject_session`).
        """
        return (
            self.session_id == session.session_id
            and self.scene == session.scene
            and self.detail == session.detail
        )


def capture_checkpoint(
    session_id: str, stream: FramePipeline, detail: float = 1.0
) -> SessionCheckpoint:
    """Snapshot a session's stream state after its latest frame."""
    return SessionCheckpoint(
        session_id=session_id,
        scene=stream.spec.name,
        detail=detail,
        next_frame=stream.frames_rendered,
        frame_key=stream.frame_key,
        cache=stream.cache_state.export_state(),
        active_detail=stream.active_detail,
        qos=(
            stream.controller.export_state()
            if stream.controller is not None
            else None
        ),
    )


def restore_checkpoint(
    stream: FramePipeline, checkpoint: SessionCheckpoint
) -> None:
    """Replay a checkpoint onto a freshly built pipeline stream.

    The stream must target the checkpoint's scene; its cache simulator
    must match the exported policy/geometry (enforced by
    :meth:`~repro.core.reuse_cache.TemporalReuseSimulator.import_state`).
    After this call, ``stream.render_next()`` produces frame
    ``checkpoint.next_frame`` exactly as the uninterrupted session
    would have.
    """
    if stream.spec.name != checkpoint.scene:
        raise ValidationError(
            f"checkpoint of session '{checkpoint.session_id}' was taken on "
            f"scene '{checkpoint.scene}', stream renders '{stream.spec.name}'"
        )
    if (checkpoint.qos is not None) != (stream.controller is not None):
        raise ValidationError(
            f"checkpoint of session '{checkpoint.session_id}' and the "
            "restored stream disagree about QoS control"
        )
    stream.cache_state.import_state(checkpoint.cache)
    if checkpoint.qos is not None:
        stream.controller.import_state(checkpoint.qos)
    active = (
        checkpoint.detail
        if checkpoint.active_detail is None
        else checkpoint.active_detail
    )
    if active != stream.active_detail:
        # Reload the rung the session was on when checkpointed — the
        # imported cache state belongs to that bundle, and the next
        # frame must flush only on a *real* rung change.
        stream.load_detail(active)
    binner = getattr(stream, "binner", None)
    if binner is not None:
        # Exact pipeline only: warm binning is exact from cold state,
        # so the binner restarts cold (digest streams have no binner).
        binner.reset()
    stream.seek(checkpoint.next_frame)


# -- JSON-safe serialization -------------------------------------------
def _require(payload: Mapping[str, Any], key: str, context: str) -> Any:
    """Fetch a required key, raising ValidationError (never KeyError)."""
    if key not in payload:
        raise ValidationError(f"checkpoint blob is missing {context} '{key}'")
    return payload[key]


def _key_to_json(value: Any) -> Any:
    """JSON-encode one frame-key node.

    Frame keys nest tuples of ints, floats (possibly numpy scalars)
    and raw ``bytes`` camera fingerprints; JSON has none of those, so
    tuples become lists, numpy scalars become Python numbers, and
    bytes become a ``{"__bytes__": hex}`` marker object.
    """
    if isinstance(value, (tuple, list)):
        return [_key_to_json(v) for v in value]
    if isinstance(value, (bytes, bytearray)):
        return {"__bytes__": bytes(value).hex()}
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, int):
        return int(value)
    if isinstance(value, float):
        return float(value)
    if hasattr(value, "item"):
        # Numpy scalar (numpy stays unimported here): unwrap to the
        # equivalent Python scalar and re-dispatch, so integral nodes
        # round-trip as int — a float()-coerced integer key would no
        # longer compare equal to a freshly computed frame key.
        return _key_to_json(value.item())
    raise ValidationError(
        f"frame key holds unserializable value of type "
        f"{type(value).__name__}"
    )


def _key_from_json(value: Any) -> Any:
    """Invert :func:`_key_to_json`: lists back to tuples, markers back
    to bytes."""
    if isinstance(value, list):
        return tuple(_key_from_json(v) for v in value)
    if isinstance(value, Mapping):
        if set(value) != {"__bytes__"}:
            raise ValidationError(
                "frame key object must be a {'__bytes__': hex} marker"
            )
        try:
            return bytes.fromhex(value["__bytes__"])
        except (TypeError, ValueError) as exc:
            raise ValidationError(
                f"frame key bytes marker is not valid hex: {exc}"
            ) from exc
    return value


def checkpoint_to_dict(checkpoint: SessionCheckpoint) -> dict[str, Any]:
    """Serialize a checkpoint to a JSON-safe dict (current version).

    The inverse of :func:`checkpoint_from_dict`; a round trip restores
    the exact same frozen dataclass up to frame-key scalar types (JSON
    has no tuples, bytes, or numpy scalars, so :func:`_key_to_json` /
    :func:`_key_from_json` translate — numpy scalars come back as
    equal-valued Python numbers of the matching kind, ints as ints).
    """
    cache = checkpoint.cache
    qos = checkpoint.qos
    return {
        "version": CHECKPOINT_FORMAT_VERSION,
        "session_id": checkpoint.session_id,
        "scene": checkpoint.scene,
        "detail": checkpoint.detail,
        "next_frame": checkpoint.next_frame,
        "frame_key": (
            None
            if checkpoint.frame_key is None
            else _key_to_json(checkpoint.frame_key)
        ),
        "cache": {
            "policy": cache.policy,
            "capacity_lines": cache.capacity_lines,
            "bytes_per_line": cache.bytes_per_line,
            "resident_ids": list(cache.resident_ids),
            "frames_observed": cache.frames_observed,
            "cumulative_accesses": cache.cumulative_accesses,
            "cumulative_hits": cache.cumulative_hits,
        },
        "active_detail": checkpoint.active_detail,
        "qos": (
            None
            if qos is None
            else {
                "scale": qos.scale,
                "frames_observed": qos.frames_observed,
                "misses": qos.misses,
                "shards": qos.shards,
                "floor_misses": qos.floor_misses,
                "comfortable_streak": qos.comfortable_streak,
            }
        ),
    }


def checkpoint_from_dict(payload: Mapping[str, Any]) -> SessionCheckpoint:
    """Deserialize a checkpoint blob, tolerating older formats.

    Blobs without a ``version`` key are treated as **v1** (pre-PR-9):
    the QoS shard-escalation counters and the ``active_detail``/``qos``
    keys may be absent and restore with their legacy defaults, so old
    persisted checkpoints keep working instead of dying on ``KeyError``.
    Blobs versioned *newer* than :data:`CHECKPOINT_FORMAT_VERSION` are
    rejected with :class:`~repro.errors.ValidationError` — a silent
    partial read of a future format could resume the wrong stream
    state.
    """
    if not isinstance(payload, Mapping):
        raise ValidationError("checkpoint blob must be a JSON object")
    version = payload.get("version", 1)
    if not isinstance(version, int) or isinstance(version, bool) or version < 1:
        raise ValidationError(
            f"checkpoint blob has invalid version {version!r}"
        )
    if version > CHECKPOINT_FORMAT_VERSION:
        raise ValidationError(
            f"checkpoint blob version {version} is newer than this build "
            f"understands (max {CHECKPOINT_FORMAT_VERSION})"
        )
    cache_payload = _require(payload, "cache", "field")
    if not isinstance(cache_payload, Mapping):
        raise ValidationError("checkpoint 'cache' must be a JSON object")
    cache = TemporalCacheState(
        policy=_require(cache_payload, "policy", "cache field"),
        capacity_lines=int(
            _require(cache_payload, "capacity_lines", "cache field")
        ),
        bytes_per_line=int(
            _require(cache_payload, "bytes_per_line", "cache field")
        ),
        resident_ids=tuple(
            int(i)
            for i in _require(cache_payload, "resident_ids", "cache field")
        ),
        frames_observed=int(
            _require(cache_payload, "frames_observed", "cache field")
        ),
        cumulative_accesses=int(
            _require(cache_payload, "cumulative_accesses", "cache field")
        ),
        cumulative_hits=int(
            _require(cache_payload, "cumulative_hits", "cache field")
        ),
    )
    qos_payload = payload.get("qos")
    qos = None
    if qos_payload is not None:
        if not isinstance(qos_payload, Mapping):
            raise ValidationError("checkpoint 'qos' must be a JSON object")
        qos = QoSControllerState(
            scale=float(_require(qos_payload, "scale", "qos field")),
            frames_observed=int(
                _require(qos_payload, "frames_observed", "qos field")
            ),
            misses=int(_require(qos_payload, "misses", "qos field")),
            # Shard escalation postdates v1 checkpoints: restore the
            # legacy no-escalation defaults when the keys are absent.
            shards=int(qos_payload.get("shards", 1)),
            floor_misses=int(qos_payload.get("floor_misses", 0)),
            comfortable_streak=int(qos_payload.get("comfortable_streak", 0)),
        )
    frame_key = payload.get("frame_key")
    active_detail = payload.get("active_detail")
    return SessionCheckpoint(
        session_id=_require(payload, "session_id", "field"),
        scene=_require(payload, "scene", "field"),
        detail=float(_require(payload, "detail", "field")),
        next_frame=int(_require(payload, "next_frame", "field")),
        frame_key=None if frame_key is None else _key_from_json(frame_key),
        cache=cache,
        active_detail=None if active_detail is None else float(active_detail),
        qos=qos,
    )
