"""Seeded open-loop synthetic traffic for fleet-scale serving.

Serving experiments so far enumerated their session lists by hand
(``skewed_session_mix``, ``qos_session_mix``).  That does not scale to
fleet-level questions — *when* do sessions arrive, in what mix, under
what daily load shape?  This module generates serving scenarios
instead of enumerating them:

* :class:`SessionArchetype` — a client population: scene, trajectory
  kind, frame-count range, detail, optional per-session target-FPS
  choices, and a sampling weight;
* :data:`MIXES` — named archetype blends (``heavy``, ``light``,
  ``dynamic``, ``mixed``) covering the paper's three application
  classes;
* :class:`RateProfile` — the arrival-rate shape over the generation
  window: ``constant``, ``diurnal`` (trough → peak → trough, a
  compressed day) or ``ramp`` (linear ramp-up, the flash-crowd /
  launch-day shape);
* :class:`TrafficGenerator` — an *open-loop* Poisson process: arrival
  times are drawn from the (possibly time-varying) rate by thinning,
  independent of how fast the fleet serves — the load model used for
  capacity studies, because closed loops hide overload.

Everything is driven by one ``numpy`` generator seeded at
construction: the same ``(mix, rate, duration, seed)`` produce the
bitwise-identical arrival sequence, session ids, trajectories and
target-FPS draws, on any host.  Tests and benchmarks rely on this to
assert on generated scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.errors import ValidationError
from repro.scenes.catalog import CATALOG
from repro.stream.pipeline import PIPELINES
from repro.stream.server import StreamSession
from repro.stream.trajectory import CameraTrajectory


@dataclass(frozen=True)
class SessionArchetype:
    """One client population the generator samples sessions from.

    Attributes
    ----------
    name:
        Label used in generated session ids (``"{name}-{n:04d}"``).
    scene:
        Catalog scene every session of this archetype streams.
    trajectory:
        Camera-path kind (``orbit``/``dolly``/``head_jitter``/
        ``frozen``).
    frames:
        Inclusive ``(lo, hi)`` range the per-session frame count is
        drawn from.
    detail:
        Scene detail multiplier (scaled further by the generator's
        global ``detail``).
    target_fps:
        Per-session deadline choices; one value is drawn per session
        (``None``: the archetype streams without QoS control).
    weight:
        Relative sampling weight within a mix.
    """

    name: str
    scene: str
    trajectory: str = "orbit"
    frames: tuple[int, int] = (8, 16)
    detail: float = 1.0
    target_fps: tuple[float, ...] | None = None
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.scene not in CATALOG:
            raise ValidationError(f"unknown scene '{self.scene}'")
        lo, hi = self.frames
        if lo < 1 or hi < lo:
            raise ValidationError(
                f"frame range {self.frames} needs 1 <= lo <= hi"
            )
        if self.detail <= 0:
            raise ValidationError("archetype detail must be positive")
        if self.weight <= 0:
            raise ValidationError("archetype weight must be positive")
        if self.target_fps is not None and any(
            f <= 0 for f in self.target_fps
        ):
            raise ValidationError("target FPS choices must be positive")


#: Named archetype blends.  ``heavy`` stresses the large outdoor
#: scenes, ``light`` is short avatar streams, ``dynamic`` exercises the
#: temporal scenes, and ``mixed`` blends all three classes the way a
#: shared edge deployment would see them (with a QoS-controlled slice).
MIXES: dict[str, tuple[SessionArchetype, ...]] = {
    "heavy": (
        SessionArchetype("heavy", "bicycle", "orbit", (10, 16)),
        SessionArchetype(
            "heavy-indoor", "kitchen", "head_jitter", (8, 14), weight=0.5
        ),
    ),
    "light": (
        SessionArchetype("light", "female_4", "head_jitter", (4, 8)),
        SessionArchetype("light-m", "male_3", "orbit", (4, 8), weight=0.5),
    ),
    "dynamic": (
        SessionArchetype("dyn", "flame_steak", "head_jitter", (6, 12)),
        SessionArchetype("dyn-sear", "sear_steak", "orbit", (6, 12), weight=0.5),
    ),
    "mixed": (
        SessionArchetype("heavy", "bicycle", "orbit", (10, 16), weight=0.6),
        SessionArchetype(
            "heavy-qos",
            "bicycle",
            "head_jitter",
            (8, 12),
            target_fps=(72.0, 90.0),
            weight=0.4,
        ),
        SessionArchetype("light", "female_4", "head_jitter", (4, 8), weight=1.0),
        SessionArchetype("dyn", "flame_steak", "head_jitter", (6, 12), weight=0.5),
    ),
}

#: Rate-profile kinds accepted by :class:`RateProfile`.
PROFILES = ("constant", "diurnal", "ramp")

#: Ceiling on the *expected* candidate-arrival draws of one
#: :meth:`TrafficGenerator.generate` call (``rate x duration``).
#: Thinning draws one candidate per ``1/rate`` seconds regardless of
#: how many survive, so a runaway rate would spin the generation loop
#: (and the fleet's tick budget downstream) long before producing a
#: usable scenario; uncapped generators above this raise
#: :class:`~repro.errors.ValidationError` at construction.
MAX_CANDIDATE_ARRIVALS = 2_000_000


@dataclass(frozen=True)
class RateProfile:
    """Arrival-rate shape over the generation window.

    The profile is a multiplier on the generator's peak ``rate``:
    ``constant`` stays at 1; ``diurnal`` runs trough → peak → trough
    over the window (one compressed day, a raised-cosine); ``ramp``
    climbs linearly from the trough to the peak (flash crowd).
    ``floor`` is the trough fraction of peak.
    """

    kind: str = "constant"
    floor: float = 0.25

    def __post_init__(self) -> None:
        if self.kind not in PROFILES:
            raise ValidationError(
                f"unknown rate profile '{self.kind}'; choose from "
                + ", ".join(PROFILES)
            )
        if not 0 < self.floor <= 1:
            raise ValidationError("profile floor must be in (0, 1]")

    def multiplier(self, phase: float) -> float:
        """Rate multiplier in ``(0, 1]`` at ``phase`` in ``[0, 1]``."""
        phase = min(max(phase, 0.0), 1.0)
        if self.kind == "constant":
            return 1.0
        if self.kind == "ramp":
            return self.floor + (1.0 - self.floor) * phase
        # diurnal: raised cosine, trough at both window edges.
        return self.floor + (1.0 - self.floor) * 0.5 * (
            1.0 - float(np.cos(2.0 * np.pi * phase))
        )

    def multiplier_array(self, phases: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`multiplier` for analytic validation.

        High-rate tests integrate the profile over 10^5+ arrival
        phases to predict counts; element-wise identical to the scalar
        path.
        """
        phases = np.clip(np.asarray(phases, dtype=np.float64), 0.0, 1.0)
        if self.kind == "constant":
            return np.ones_like(phases)
        if self.kind == "ramp":
            return self.floor + (1.0 - self.floor) * phases
        return self.floor + (1.0 - self.floor) * 0.5 * (
            1.0 - np.cos(2.0 * np.pi * phases)
        )

    @property
    def mean_multiplier(self) -> float:
        """Window-averaged multiplier (the thinning acceptance rate).

        ``constant`` is 1; ``ramp`` averages the linear climb and
        ``diurnal`` the raised cosine — both integrate to the midpoint
        of floor and peak over one window.
        """
        if self.kind == "constant":
            return 1.0
        return 0.5 * (1.0 + self.floor)


@dataclass(frozen=True)
class SessionArrival:
    """One generated arrival: when the client shows up, and its request."""

    time: float
    session: StreamSession

    @property
    def session_id(self) -> str:
        return self.session.session_id


class TrafficGenerator:
    """Open-loop Poisson session traffic over a named (or custom) mix.

    Parameters
    ----------
    mix:
        A key of :data:`MIXES` or an explicit archetype tuple.
    rate:
        Peak arrival rate in sessions per simulated second; the
        instantaneous rate is ``rate * profile.multiplier(t/duration)``.
    duration:
        Generation window in simulated seconds (arrivals beyond it are
        not generated — the fleet keeps serving until drained).
    seed:
        Seeds every draw: arrival times, archetype choices, frame
        counts, trajectory seeds/phases, target-FPS picks.
    profile:
        Arrival-rate shape (default: constant).
    detail:
        Global detail multiplier applied on top of each archetype's
        detail (tests and smokes use < 1).
    max_sessions:
        Optional hard cap on generated sessions (safety valve for
        high-rate sweeps).
    pipeline:
        Frame-pipeline mode stamped on every generated session
        (``"exact"`` or ``"digest"``); digest scenarios are how the
        fleet reaches 10^5+ concurrent sessions.
    compact:
        Build one-pose camera trajectories and carry the drawn frame
        count on ``StreamSession.n_frames`` instead of materializing
        every camera of every session.  Draw-for-draw identical RNG
        consumption, so arrival times, session ids, frame budgets,
        details and target-FPS picks are bitwise identical to the full
        build — required at 10^5+ sessions, where camera-path
        construction dominates generation.  Compact sessions cannot
        feed the exact pipeline's content-addressed cache (no per-frame
        poses); digest-scale benchmarks are their home.
    """

    def __init__(
        self,
        mix: str | Iterable[SessionArchetype] = "mixed",
        rate: float = 2.0,
        duration: float = 8.0,
        seed: int = 0,
        profile: RateProfile | None = None,
        detail: float = 1.0,
        max_sessions: int | None = None,
        pipeline: str = "exact",
        compact: bool = False,
    ) -> None:
        if isinstance(mix, str):
            if mix not in MIXES:
                raise ValidationError(
                    f"unknown traffic mix '{mix}'; choose from "
                    + ", ".join(sorted(MIXES))
                )
            archetypes = MIXES[mix]
            self.mix_name = mix
        else:
            archetypes = tuple(mix)
            self.mix_name = "custom"
        if not archetypes:
            raise ValidationError("traffic mix needs at least one archetype")
        if rate <= 0:
            raise ValidationError("arrival rate must be positive")
        if duration <= 0:
            raise ValidationError("traffic duration must be positive")
        if detail <= 0:
            raise ValidationError("traffic detail must be positive")
        if max_sessions is not None and max_sessions < 1:
            raise ValidationError("max_sessions must be at least 1 when set")
        if seed < 0:
            raise ValidationError("traffic seed cannot be negative")
        if pipeline not in PIPELINES:
            raise ValidationError(
                f"unknown pipeline '{pipeline}'; choose from "
                + ", ".join(PIPELINES)
            )
        if max_sessions is None and rate * duration > MAX_CANDIDATE_ARRIVALS:
            raise ValidationError(
                f"rate {rate:g}/s over {duration:g}s implies "
                f"~{rate * duration:.0f} arrival candidates, overflowing "
                f"the generation budget of {MAX_CANDIDATE_ARRIVALS}; cap "
                "the scenario with max_sessions or lower the rate"
            )
        self.archetypes = archetypes
        self.rate = float(rate)
        self.duration = float(duration)
        self.seed = int(seed)
        self.profile = RateProfile() if profile is None else profile
        self.detail = float(detail)
        self.max_sessions = max_sessions
        self.pipeline = pipeline
        self.compact = bool(compact)
        weights = np.array([a.weight for a in archetypes], dtype=np.float64)
        self._weights = weights / weights.sum()

    def expected_sessions(self) -> float:
        """Analytically expected surviving-arrival count.

        The thinned process keeps candidates (drawn at the peak rate)
        with probability ``profile.multiplier``, so the expectation is
        ``rate x duration x mean_multiplier`` — the number high-rate
        validation compares generated counts against (and the capacity
        planner's first input).  ``max_sessions`` truncates it.
        """
        expected = self.rate * self.duration * self.profile.mean_multiplier
        if self.max_sessions is not None:
            expected = min(expected, float(self.max_sessions))
        return expected

    def _build_session(
        self, rng: np.random.Generator, index: int
    ) -> StreamSession:
        arch = self.archetypes[
            int(rng.choice(len(self.archetypes), p=self._weights))
        ]
        lo, hi = arch.frames
        n_frames = int(rng.integers(lo, hi + 1))
        detail = arch.detail * self.detail
        spec = CATALOG[arch.scene]
        # The compact branch consumes the RNG identically (same draws,
        # same order) — only the trajectory materialization shrinks.
        trajectory = CameraTrajectory.for_scene(
            spec,
            kind=arch.trajectory,
            n_frames=1 if self.compact else n_frames,
            seed=int(rng.integers(0, 2**31 - 1)),
            detail=detail,
            phase_deg=float(rng.uniform(0.0, 360.0)),
        )
        target_fps = None
        if arch.target_fps is not None:
            target_fps = float(
                arch.target_fps[int(rng.integers(0, len(arch.target_fps)))]
            )
        return StreamSession(
            session_id=f"{arch.name}-{index:04d}",
            scene=arch.scene,
            trajectory=trajectory,
            n_frames=n_frames if self.compact else None,
            detail=detail,
            target_fps=target_fps,
            pipeline=self.pipeline,
        )

    def generate(self) -> list[SessionArrival]:
        """Draw the full arrival sequence (sorted by arrival time).

        Non-homogeneous Poisson sampling by thinning: candidate gaps
        are exponential at the peak rate; each candidate survives with
        probability ``profile.multiplier(t / duration)``.  Every draw
        comes from one seeded generator, so the whole scenario is a
        pure function of the constructor arguments.
        """
        rng = np.random.default_rng(self.seed)
        arrivals: list[SessionArrival] = []
        t = 0.0
        index = 0
        while True:
            t += float(rng.exponential(1.0 / self.rate))
            if t >= self.duration:
                break
            if rng.uniform() > self.profile.multiplier(t / self.duration):
                continue
            arrivals.append(
                SessionArrival(time=t, session=self._build_session(rng, index))
            )
            index += 1
            if self.max_sessions is not None and index >= self.max_sessions:
                break
        return arrivals

    def generate_sessions(self) -> list[StreamSession]:
        """Just the session descriptors (closed-loop studies, benchmarks)."""
        return [a.session for a in self.generate()]
