"""Deadline-aware adaptive quality control for stream serving.

The paper's premise is *real-time* Gaussian rendering: an AR/VR frame
is only useful if it lands before the display refresh (72/90 Hz).  A
fixed per-session ``detail`` ignores that — heavy scenes simply miss
every deadline while light ones waste quality headroom.  This module
closes the loop:

* :class:`FrameDeadline` — a session's frame budget, derived from a
  target refresh rate;
* :class:`QoSPolicy` — the controller knobs: the detail band the
  controller may walk (relative to the session's nominal detail), the
  multiplicative decrease applied on a deadline miss, the slow
  additive recovery, the recovery hysteresis, and the ladder quantum
  that keeps the set of distinct rendered details finite;
* :class:`QualityController` — a per-session AIMD-style closed loop:
  every observed frame latency (the stream's paper-scale
  ``sim_seconds``) updates the detail the *next* frame renders at.
  Deadline misses cut detail multiplicatively (fast back-off);
  comfortably-met deadlines recover it additively (slow probing), but
  only while the latency margin exceeds the hysteresis band, so the
  controller parks just below the deadline instead of oscillating
  across it;
* :class:`QoSRecord` — the per-frame audit trail (deadline, detail
  used, met/missed, margin) attached to every
  :class:`~repro.stream.pipeline.FrameRecord`;
* :class:`QoSControllerState` — the exported controller state carried
  by :class:`~repro.stream.checkpoint.SessionCheckpoint`, so crash
  recovery and migration replay the *same* detail trace byte for byte.

Determinism: the controller is a pure function of its policy and the
observed latency sequence — identical inputs produce identical detail
ladders, which is what checkpoint replay relies on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError


@dataclass(frozen=True)
class FrameDeadline:
    """A session's per-frame latency budget, from a target refresh rate."""

    target_fps: float

    def __post_init__(self) -> None:
        if self.target_fps <= 0:
            raise ValidationError("target FPS must be positive")

    @property
    def deadline_seconds(self) -> float:
        """The frame budget: one refresh interval."""
        return 1.0 / self.target_fps

    def met(self, sim_seconds: float) -> bool:
        return sim_seconds <= self.deadline_seconds

    def margin(self, sim_seconds: float) -> float:
        """Seconds of slack (negative when the deadline was missed)."""
        return self.deadline_seconds - sim_seconds


@dataclass(frozen=True)
class QoSPolicy:
    """Knobs of the closed-loop quality controller.

    The detail band is *relative* to the session's nominal detail: a
    session requested at ``detail=0.5`` with ``min_detail=0.25`` may
    drop to an absolute detail of ``0.125``.  At the default nominal
    detail of 1.0 the band reads as absolute detail.

    Attributes
    ----------
    min_detail / max_detail:
        The band the controller may walk, as multiples of the
        session's nominal detail.
    decrease:
        Multiplicative back-off applied to detail on a deadline miss.
    increase:
        Additive recovery step (in detail units, relative scale) for a
        comfortably-met frame.
    hysteresis:
        Recovery dead band: detail only recovers while the latency
        margin exceeds this fraction of the deadline, so the
        controller holds position near the deadline instead of
        climbing into it.
    quantum:
        Detail ladder rung size.  The controller's internal state is
        continuous, but emitted details snap to multiples of the
        quantum — keeping the set of distinct (scene, detail) bundles
        a serve touches finite and cacheable.
    max_shards:
        Ceiling on intra-frame tile sharding.  The default of 1
        disables escalation entirely (the legacy detail-only
        controller).  When larger, a session that keeps missing its
        deadline *at the detail floor* — quality degradation is
        exhausted — escalates to more parallel tile engines instead of
        simply failing every frame.
    shard_after:
        Consecutive deadline misses at the detail floor before the
        controller adds a shard.
    shard_release:
        Consecutive comfortably-met frames (margin above the
        hysteresis band) before one shard is released again, so
        hardware parallelism is returned once quality has recovered.
    """

    min_detail: float = 0.25
    max_detail: float = 1.0
    decrease: float = 0.75
    increase: float = 0.05
    hysteresis: float = 0.1
    quantum: float = 0.05
    max_shards: int = 1
    shard_after: int = 3
    shard_release: int = 8

    def __post_init__(self) -> None:
        if not 0 < self.min_detail <= self.max_detail:
            raise ValidationError(
                "detail band needs 0 < min_detail <= max_detail"
            )
        if not 0 < self.decrease <= 1:
            raise ValidationError("decrease factor must be in (0, 1]")
        if self.increase < 0:
            raise ValidationError("increase step cannot be negative")
        if self.hysteresis < 0:
            raise ValidationError("hysteresis cannot be negative")
        if self.quantum <= 0:
            raise ValidationError("detail quantum must be positive")
        if self.max_shards < 1:
            raise ValidationError("max_shards must be at least 1")
        if self.shard_after < 1 or self.shard_release < 1:
            raise ValidationError(
                "shard escalation thresholds must be at least 1"
            )

    @staticmethod
    def fixed() -> "QoSPolicy":
        """Deadline *tracking* without adaptation.

        The controller pins detail at the nominal value and only
        records met/missed — the baseline the adaptive mode is
        compared against in ``analysis/streaming.py`` and
        ``benchmarks/bench_qos.py``.
        """
        return QoSPolicy(min_detail=1.0, max_detail=1.0, increase=0.0)


@dataclass(frozen=True)
class QoSRecord:
    """Per-frame quality-of-service audit record.

    Attributes
    ----------
    frame:
        Stream frame index.
    detail:
        Absolute detail the frame rendered at.
    sim_seconds:
        The frame's paper-scale latency (what the deadline judges).
    deadline_seconds:
        The session's frame budget.
    met:
        Whether the frame landed within the deadline.
    margin_seconds:
        ``deadline - sim_seconds`` (negative on a miss).
    """

    frame: int
    detail: float
    sim_seconds: float
    deadline_seconds: float
    met: bool
    margin_seconds: float


@dataclass(frozen=True)
class QoSControllerState:
    """Exported controller state (checkpointed with the session).

    ``scale`` is the continuous internal detail scale; the counters
    make the controller's cumulative statistics survive recovery.  The
    shard fields default to the legacy (no-escalation) values so
    checkpoints taken before shard escalation existed restore
    unchanged.
    """

    scale: float
    frames_observed: int
    misses: int
    shards: int = 1
    floor_misses: int = 0
    comfortable_streak: int = 0


class QualityController:
    """Closed-loop per-session detail controller (AIMD).

    Parameters
    ----------
    deadline:
        The session's frame budget.
    policy:
        Controller knobs (:class:`QoSPolicy`).
    nominal_detail:
        The session's requested detail; the policy's detail band and
        the emitted absolute details are scaled by it.
    """

    def __init__(
        self,
        deadline: FrameDeadline,
        policy: QoSPolicy | None = None,
        nominal_detail: float = 1.0,
    ) -> None:
        if nominal_detail <= 0:
            raise ValidationError("nominal detail must be positive")
        self.deadline = deadline
        self.policy = QoSPolicy() if policy is None else policy
        self.nominal_detail = float(nominal_detail)
        self._scale = self.policy.max_detail
        self._frames = 0
        self._misses = 0
        self._shards = 1
        self._floor_misses = 0
        self._comfort = 0

    # -- emitted detail -------------------------------------------------
    @property
    def scale(self) -> float:
        """Continuous internal detail scale (before quantization)."""
        return self._scale

    @property
    def next_detail(self) -> float:
        """Absolute detail the next frame should render at.

        The continuous scale snaps to the policy's ladder quantum, so
        consecutive frames reuse the same scene bundle until the
        controller has drifted a full rung.  Equal rungs always emit
        the bit-identical float (``int * quantum * nominal``), so rung
        comparisons and ``(scene, detail)`` cache keys are exact; at
        the band ceiling of 1.0 the emitted detail *is* the nominal
        detail, whatever its binary representation.
        """
        q = self.policy.quantum
        rung = round(self._scale / q) * q
        rung = min(max(rung, self.policy.min_detail), self.policy.max_detail)
        if rung == 1.0:
            return self.nominal_detail
        return rung * self.nominal_detail

    @property
    def next_shards(self) -> int:
        """Tile shards the next frame should render with.

        Stays 1 (no sharding) until the session has exhausted its
        quality band — ``shard_after`` consecutive misses while parked
        at the detail floor — then climbs one shard at a time toward
        the policy's ``max_shards``; released again after
        ``shard_release`` comfortable frames.
        """
        return self._shards

    @property
    def at_detail_floor(self) -> bool:
        """Whether the emitted detail is pinned at the band floor."""
        q = self.policy.quantum
        rung = round(self._scale / q) * q
        return max(rung, self.policy.min_detail) <= self.policy.min_detail

    # -- statistics -----------------------------------------------------
    @property
    def frames_observed(self) -> int:
        return self._frames

    @property
    def misses(self) -> int:
        return self._misses

    @property
    def miss_rate(self) -> float:
        if self._frames == 0:
            return 0.0
        return self._misses / self._frames

    # -- the loop -------------------------------------------------------
    def observe(self, frame: int, detail: float, sim_seconds: float) -> QoSRecord:
        """Account one rendered frame and adapt the next frame's detail.

        ``detail`` is the absolute detail the frame actually rendered
        at (the :attr:`next_detail` the caller read before rendering);
        it is recorded, not re-derived, so the audit trail always
        matches what happened.
        """
        if sim_seconds <= 0:
            raise ValidationError("frame latency must be positive")
        met = self.deadline.met(sim_seconds)
        margin = self.deadline.margin(sim_seconds)
        self._frames += 1
        comfortable = (
            met
            and margin > self.policy.hysteresis * self.deadline.deadline_seconds
        )
        if not met:
            self._misses += 1
            was_at_floor = self.at_detail_floor
            self._scale = max(
                self._scale * self.policy.decrease, self.policy.min_detail
            )
            self._comfort = 0
            # Quality degradation exhausted -> escalate parallelism.
            if was_at_floor and self.policy.max_shards > 1:
                self._floor_misses += 1
                if (
                    self._floor_misses >= self.policy.shard_after
                    and self._shards < self.policy.max_shards
                ):
                    self._shards += 1
                    self._floor_misses = 0
        else:
            self._floor_misses = 0
            if comfortable:
                self._scale = min(
                    self._scale + self.policy.increase, self.policy.max_detail
                )
                if self._shards > 1:
                    self._comfort += 1
                    if self._comfort >= self.policy.shard_release:
                        self._shards -= 1
                        self._comfort = 0
            else:
                self._comfort = 0
        return QoSRecord(
            frame=frame,
            detail=detail,
            sim_seconds=sim_seconds,
            deadline_seconds=self.deadline.deadline_seconds,
            met=met,
            margin_seconds=margin,
        )

    def reset(self) -> None:
        """Return to the initial state (full detail, zero counters)."""
        self._scale = self.policy.max_detail
        self._frames = 0
        self._misses = 0
        self._shards = 1
        self._floor_misses = 0
        self._comfort = 0

    # -- checkpointing --------------------------------------------------
    def export_state(self) -> QoSControllerState:
        """Snapshot the loop state for a session checkpoint."""
        return QoSControllerState(
            scale=self._scale,
            frames_observed=self._frames,
            misses=self._misses,
            shards=self._shards,
            floor_misses=self._floor_misses,
            comfortable_streak=self._comfort,
        )

    def import_state(self, state: QoSControllerState) -> None:
        """Restore loop state captured by :meth:`export_state`."""
        if not (
            self.policy.min_detail <= state.scale <= self.policy.max_detail
        ):
            raise ValidationError(
                f"checkpointed detail scale {state.scale} is outside the "
                f"policy band [{self.policy.min_detail}, "
                f"{self.policy.max_detail}]"
            )
        if state.frames_observed < 0 or not (
            0 <= state.misses <= state.frames_observed
        ):
            raise ValidationError("corrupt QoS controller counters")
        if not 1 <= state.shards <= max(self.policy.max_shards, 1):
            raise ValidationError(
                f"checkpointed shard count {state.shards} is outside the "
                f"policy's [1, {self.policy.max_shards}]"
            )
        if state.floor_misses < 0 or state.comfortable_streak < 0:
            raise ValidationError("corrupt QoS shard-escalation counters")
        self._scale = float(state.scale)
        self._frames = int(state.frames_observed)
        self._misses = int(state.misses)
        self._shards = int(state.shards)
        self._floor_misses = int(state.floor_misses)
        self._comfort = int(state.comfortable_streak)
