"""Frame-sequence streaming: trajectories, warm pipelines, serving.

The paper's target is a *stream* of head-tracked frames, not isolated
images.  This package layers a serving subsystem on top of the
single-frame renderer:

* :mod:`repro.stream.trajectory` — deterministic camera paths (orbit,
  dolly, head jitter, frozen) built on :mod:`repro.gaussians.camera`;
* :mod:`repro.stream.binning` — warm-started tile binning that carries
  (tile, Gaussian) instances across frames and regenerates only the
  Gaussians whose tile footprint moved;
* :mod:`repro.stream.pipeline` — the :class:`FramePipeline` protocol
  and :class:`FrameStream`, the *exact* per-session pipeline that
  renders a trajectory over any catalog scene while persisting binning
  state and the temporal reuse-cache mode of
  :class:`repro.core.reuse_cache.TemporalReuseSimulator`;
* :mod:`repro.stream.digest` — the *digest* pipeline:
  :class:`DigestFrameStream` advances sessions from calibrated
  :class:`WorkloadModel` tables instead of rendering pixels, keeping
  sim-seconds, cache, QoS and checkpoint semantics while serving
  10^5+ concurrent sessions;
* :mod:`repro.stream.reporting` — the shared serving reports
  (:class:`SessionResult`, :class:`ServeSummary`, :class:`TickResult`)
  both pipelines and both serving layers emit through;
* :mod:`repro.stream.qos` — deadline-aware adaptive quality control:
  per-session frame deadlines (target FPS) and a closed-loop AIMD
  controller that walks the detail ladder from observed frame
  latencies;
* :mod:`repro.stream.scheduler` — session placement (round-robin and
  load-aware, with ``(scene, detail)``-keyed latency estimates),
  admission control with backpressure, and skew-triggered
  rebalancing;
* :mod:`repro.stream.checkpoint` — lightweight session snapshots
  (trajectory cursor + temporal-cache resident set) powering worker
  crash recovery and migrations;
* :mod:`repro.stream.content_cache` — the fleet-wide
  content-addressed render cache: session → worker → node → fleet
  tiers keyed by (scene, quantized pose, detail, render mode), with
  whole-frame dedup across co-located viewers, cost-aware eviction
  and shared scene-bundle interning;
* :mod:`repro.stream.server` — :class:`StreamServer`, multiplexing N
  client sessions over a ``concurrent.futures`` worker pool with one
  :class:`repro.core.gbu.GBUDevice` per worker, request batching of
  same-scene sessions, checkpoint-replay fault tolerance, and the
  incremental ``begin``/``submit``/``step``/``finish`` protocol the
  fleet layer drives;
* :mod:`repro.stream.traffic` — seeded open-loop synthetic traffic:
  Poisson arrivals over named archetype mixes with diurnal/ramp rate
  profiles and per-session target-FPS sampling;
* :mod:`repro.stream.fleet` — :class:`EdgeFleet`, N server nodes
  behind a global router with fleet admission control, least-loaded/
  affinity node selection, checkpoint-based cross-node migration, and
  threshold-driven autoscaling;
* :mod:`repro.stream.gateway` — :class:`StreamGateway`, the asyncio
  wire boundary: length-prefixed JSON over loopback/TCP fronting a
  server or fleet, with checkpoint-backed reconnects, bounded
  per-connection send queues (slow clients pause their own stream),
  and an HTTP shim for probes;
* :mod:`repro.stream.cli` — the ``repro-stream`` command line
  (also ``python -m repro.stream``), including the ``fleet`` and
  ``serve`` subcommands.
"""

from repro.stream.binning import BinningStats, WarmBinner
from repro.stream.checkpoint import (
    CHECKPOINT_FORMAT_VERSION,
    SessionCheckpoint,
    capture_checkpoint,
    checkpoint_from_dict,
    checkpoint_to_dict,
    restore_checkpoint,
)
from repro.stream.gateway import (
    GatewayClient,
    StreamGateway,
    encode_message,
    read_message,
    session_from_payload,
)
from repro.stream.content_cache import (
    TIER_LEVELS,
    BundleIntern,
    CachedFrame,
    CacheTier,
    ContentCacheConfig,
    SessionContentView,
    canonical_camera,
    economics_to_dict,
    frame_content_key,
    merge_economics,
)
from repro.stream.digest import (
    DigestFrameStream,
    TraceAgreement,
    WorkloadModel,
    WorkloadModelTable,
    assert_trace_agreement,
    trace_agreement,
)
from repro.stream.fleet import (
    ROUTERS,
    AutoscaleEvent,
    EdgeFleet,
    FleetResult,
    NodeMigration,
)
from repro.stream.pipeline import (
    PIPELINES,
    FramePipeline,
    FrameRecord,
    FrameStream,
    StreamReport,
    streaming_config,
)
from repro.stream.reporting import (
    ConnectionStats,
    ServeSummary,
    SessionResult,
    TickResult,
    frame_evidence,
    report_evidence,
)
from repro.stream.qos import (
    FrameDeadline,
    QoSControllerState,
    QoSPolicy,
    QoSRecord,
    QualityController,
)
from repro.stream.scheduler import (
    PLACEMENTS,
    LoadAwareScheduler,
    Migration,
    RoundRobinScheduler,
    StreamScheduler,
    make_scheduler,
    static_frame_estimate,
)
from repro.stream.server import StreamServer, StreamSession
from repro.stream.traffic import (
    MIXES,
    PROFILES,
    RateProfile,
    SessionArchetype,
    SessionArrival,
    TrafficGenerator,
)
from repro.stream.trajectory import CameraTrajectory

__all__ = [
    "BinningStats",
    "WarmBinner",
    "ROUTERS",
    "AutoscaleEvent",
    "EdgeFleet",
    "FleetResult",
    "NodeMigration",
    "MIXES",
    "PROFILES",
    "RateProfile",
    "SessionArchetype",
    "SessionArrival",
    "TrafficGenerator",
    "CHECKPOINT_FORMAT_VERSION",
    "SessionCheckpoint",
    "capture_checkpoint",
    "checkpoint_from_dict",
    "checkpoint_to_dict",
    "restore_checkpoint",
    "GatewayClient",
    "StreamGateway",
    "encode_message",
    "read_message",
    "session_from_payload",
    "TIER_LEVELS",
    "BundleIntern",
    "CachedFrame",
    "CacheTier",
    "ContentCacheConfig",
    "SessionContentView",
    "canonical_camera",
    "economics_to_dict",
    "frame_content_key",
    "merge_economics",
    "PIPELINES",
    "FramePipeline",
    "FrameRecord",
    "FrameStream",
    "StreamReport",
    "streaming_config",
    "DigestFrameStream",
    "TraceAgreement",
    "WorkloadModel",
    "WorkloadModelTable",
    "assert_trace_agreement",
    "trace_agreement",
    "FrameDeadline",
    "QoSControllerState",
    "QoSPolicy",
    "QoSRecord",
    "QualityController",
    "PLACEMENTS",
    "LoadAwareScheduler",
    "Migration",
    "RoundRobinScheduler",
    "StreamScheduler",
    "make_scheduler",
    "static_frame_estimate",
    "ConnectionStats",
    "ServeSummary",
    "SessionResult",
    "StreamServer",
    "StreamSession",
    "TickResult",
    "frame_evidence",
    "report_evidence",
    "CameraTrajectory",
]
