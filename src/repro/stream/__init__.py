"""Frame-sequence streaming: trajectories, warm pipelines, serving.

The paper's target is a *stream* of head-tracked frames, not isolated
images.  This package layers a serving subsystem on top of the
single-frame renderer:

* :mod:`repro.stream.trajectory` — deterministic camera paths (orbit,
  dolly, head jitter, frozen) built on :mod:`repro.gaussians.camera`;
* :mod:`repro.stream.binning` — warm-started tile binning that carries
  (tile, Gaussian) instances across frames and regenerates only the
  Gaussians whose tile footprint moved;
* :mod:`repro.stream.pipeline` — :class:`FrameStream`, the per-session
  pipeline that renders a trajectory over any catalog scene while
  persisting binning state and the temporal reuse-cache mode of
  :class:`repro.core.reuse_cache.TemporalReuseSimulator`;
* :mod:`repro.stream.server` — :class:`StreamServer`, multiplexing N
  client sessions over a ``concurrent.futures`` worker pool with one
  :class:`repro.core.gbu.GBUDevice` per worker and request batching of
  same-scene sessions;
* :mod:`repro.stream.cli` — the ``repro-stream`` command line
  (also ``python -m repro.stream``).
"""

from repro.stream.binning import BinningStats, WarmBinner
from repro.stream.pipeline import (
    FrameRecord,
    FrameStream,
    StreamReport,
    streaming_config,
)
from repro.stream.server import (
    ServeSummary,
    SessionResult,
    StreamServer,
    StreamSession,
)
from repro.stream.trajectory import CameraTrajectory

__all__ = [
    "BinningStats",
    "WarmBinner",
    "FrameRecord",
    "FrameStream",
    "StreamReport",
    "streaming_config",
    "ServeSummary",
    "SessionResult",
    "StreamServer",
    "StreamSession",
    "CameraTrajectory",
]
