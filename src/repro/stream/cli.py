"""The ``repro-stream`` command line.

Streams one or more client sessions over a scene and prints per-session
serving metrics — cold vs. warm cache hit rates, binning reuse, and
simulated / wall throughput.  Installed as the ``repro-stream`` console
script; also runnable without installation:

    PYTHONPATH=src python -m repro.stream --scene bicycle \\
        --trajectory orbit --frames 16 --sessions 2 --workers 0

The ``fleet`` subcommand serves *generated* open-loop traffic over a
multi-node fleet instead of a hand-built session list:

    PYTHONPATH=src python -m repro.stream fleet --nodes 2 \\
        --mix mixed --rate 40 --duration 0.5 --detail 0.5

It prints per-node serving totals plus the fleet summary (throughput,
queue depth, migrations, autoscale events); ``--max-nodes`` above
``--nodes`` enables threshold autoscaling.

With ``--target-fps`` every session runs under deadline-aware quality
control (:mod:`repro.stream.qos`): ``--qos adaptive`` (default) lets
the per-session controller walk the detail ladder, ``--qos fixed``
only tracks deadline hits/misses at the requested detail; the table
then also reports each session's deadline-miss rate and mean delivered
detail.

``--render-mode approx`` serves with the contribution-aware
approximate backend (optionally tuned with ``--tolerance``), and
``--shards N`` enables intra-frame tile sharding: a static N-way split
without QoS, or the controller's escalation ceiling under
``--target-fps`` with adaptive QoS.

``--content-cache`` enables the tiered content-addressed render cache
(:mod:`repro.stream.content_cache`): co-located viewers whose poses
fall in the same quantization cell (``--pose-quant``, scene units; 0
dedups only bit-identical poses) are served one shared render product,
and the summary gains a per-tier hit-rate/traffic line.  Both the main
command and the ``fleet`` subcommand accept the pair.

Each session gets its own trajectory: session ``i`` uses seed
``seed + i`` (head-jitter) or phase offset ``i`` (orbit), so concurrent
clients view the scene from distinct, deterministic paths.

Invalid arguments — an unknown scene, a non-positive ``--detail`` or
``--target-fps`` — exit with status 2 and a one-line ``error:``
message, never a traceback.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
from dataclasses import replace

from repro.core.reuse_cache import POLICIES
from repro.errors import ValidationError
from repro.harness import format_table
from repro.render.approx import APPROX_TOLERANCE_ENV_VAR
from repro.render.backends import get_backend
from repro.scenes.catalog import CATALOG
from repro.stream.content_cache import ContentCacheConfig, economics_to_dict
from repro.stream.digest import WorkloadModelTable
from repro.stream.fleet import ROUTERS, EdgeFleet
from repro.stream.pipeline import PIPELINES, streaming_config
from repro.stream.qos import QoSPolicy
from repro.stream.scheduler import PLACEMENTS
from repro.stream.server import StreamServer, StreamSession
from repro.stream.traffic import MIXES, PROFILES, RateProfile, TrafficGenerator
from repro.stream.trajectory import CameraTrajectory

TRAJECTORIES = ("orbit", "dolly", "head_jitter", "frozen")

QOS_MODES = ("adaptive", "fixed")

RENDER_MODES = ("exact", "approx")


def _add_pipeline_args(parser: argparse.ArgumentParser) -> None:
    """The frame-pipeline argument pair, shared by both serve commands."""
    parser.add_argument(
        "--pipeline",
        default="exact",
        choices=PIPELINES,
        help="frame pipeline: 'exact' renders every frame; 'digest' "
        "advances sessions from calibrated workload models "
        "(default: exact)",
    )
    parser.add_argument(
        "--models",
        metavar="PATH",
        default=None,
        help="workload-model table JSON (see the 'calibrate' "
        "subcommand); with --pipeline digest and no --models, a table "
        "is calibrated in-process before serving",
    )


def _validate_pipeline_args(args: argparse.Namespace) -> None:
    if args.models is not None and args.pipeline != "digest":
        raise ValidationError("--models requires --pipeline digest")


def _load_models(path: str) -> WorkloadModelTable:
    """Load a workload-model table from JSON.

    Failures are argument-shaped — a missing/unreadable file or
    malformed JSON is the user mistyping ``--models``, not a server
    bug — so both routes surface as :class:`ValidationError` (one-line
    ``error:`` message, exit 2), never a bare traceback.
    ``from_json`` already maps ``json.JSONDecodeError`` to
    :class:`ValidationError`; the I/O side is mapped here.
    """
    try:
        with open(path) as fh:
            text = fh.read()
    except OSError as exc:
        raise ValidationError(f"cannot read --models '{path}': {exc}") from exc
    return WorkloadModelTable.from_json(text)


def _add_content_cache_args(parser: argparse.ArgumentParser) -> None:
    """The content-cache argument pair, shared by both commands."""
    parser.add_argument(
        "--content-cache",
        action="store_true",
        help="enable the tiered content-addressed render cache "
        "(whole-frame dedup across co-located viewers)",
    )
    parser.add_argument(
        "--pose-quant",
        type=float,
        default=0.0,
        metavar="Q",
        help="camera-eye quantization cell size in scene units; viewers "
        "inside one cell share rendered frames (0 = exact poses only; "
        "requires --content-cache)",
    )


def _validate_content_cache_args(args: argparse.Namespace) -> None:
    if args.pose_quant < 0:
        raise ValidationError("--pose-quant cannot be negative")
    if args.pose_quant > 0 and not args.content_cache:
        raise ValidationError("--pose-quant requires --content-cache")


def _content_config(args: argparse.Namespace) -> ContentCacheConfig | None:
    if not args.content_cache:
        return None
    return ContentCacheConfig(pose_quant=args.pose_quant)


def _print_content_economics(totals: dict) -> None:
    parts = []
    for level, econ in economics_to_dict(totals).items():
        parts.append(
            f"{level} {econ['hits']}/{econ['accesses']} "
            f"({econ['hit_rate']:.0%})"
        )
    line = ", ".join(parts) if parts else "no lookups"
    print(f"content cache hits by tier: {line}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-stream",
        description="Stream frame sequences over catalog scenes "
        "with cross-frame reuse.",
    )
    parser.add_argument(
        "--scene",
        default="bicycle",
        help="catalog scene (default: bicycle)",
    )
    parser.add_argument(
        "--trajectory",
        default="orbit",
        choices=TRAJECTORIES,
        help="camera path archetype (default: orbit)",
    )
    parser.add_argument(
        "--frames", type=int, default=16, help="frames per session (default: 16)"
    )
    parser.add_argument(
        "--sessions", type=int, default=1, help="concurrent sessions (default: 1)"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes; 0 = in-process (default: 0)",
    )
    parser.add_argument(
        "--placement",
        default="load",
        choices=PLACEMENTS,
        help="session->worker policy: load-aware or round-robin "
        "(default: load)",
    )
    parser.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        metavar="N",
        help="admission control: serve at most N sessions concurrently, "
        "queueing the rest (default: unlimited)",
    )
    parser.add_argument(
        "--detail", type=float, default=1.0, help="scene detail multiplier"
    )
    parser.add_argument(
        "--target-fps",
        type=float,
        default=None,
        metavar="FPS",
        help="per-frame deadline as a refresh rate (e.g. 72); enables "
        "QoS tracking (default: no deadline)",
    )
    parser.add_argument(
        "--qos",
        default="adaptive",
        choices=QOS_MODES,
        help="with --target-fps: 'adaptive' closes the loop on detail, "
        "'fixed' only records deadline hits/misses (default: adaptive)",
    )
    parser.add_argument(
        "--backend",
        default="vectorized",
        help="render backend (default: vectorized)",
    )
    parser.add_argument(
        "--render-mode",
        default="exact",
        choices=RENDER_MODES,
        help="'exact' renders with --backend; 'approx' renders with the "
        "contribution-aware approximate backend (measured-quality, see "
        "BENCH_approx.json) (default: exact)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=None,
        metavar="T",
        help="approx-mode quality tolerance in [0, 1]; only valid with "
        "--render-mode approx (default: the backend's built-in default)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help="intra-frame tile shards: with --target-fps and adaptive QoS "
        "this is the escalation ceiling (sessions shard only after their "
        "quality band is exhausted); otherwise every frame renders with "
        "N parallel tile engines (default: 1)",
    )
    parser.add_argument(
        "--cache-policy",
        default="reuse_distance",
        choices=sorted(POLICIES),
        help="reuse-cache policy (default: reuse_distance)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="base seed for jittered paths"
    )
    _add_pipeline_args(parser)
    _add_content_cache_args(parser)
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the full per-frame report as JSON ('-' for stdout)",
    )
    return parser


def validate_args(args: argparse.Namespace) -> None:
    """Reject invalid argument values with :class:`ValidationError`."""
    if args.scene not in CATALOG:
        raise ValidationError(
            f"unknown scene '{args.scene}'; choose from "
            + ", ".join(sorted(CATALOG))
        )
    if args.frames <= 0:
        raise ValidationError("--frames must be positive")
    if args.sessions <= 0:
        raise ValidationError("--sessions must be positive")
    if args.workers < 0:
        raise ValidationError("--workers cannot be negative")
    if args.max_inflight is not None and args.max_inflight < 1:
        raise ValidationError("--max-inflight must be at least 1")
    if args.detail <= 0:
        raise ValidationError("--detail must be positive")
    if args.target_fps is not None and args.target_fps <= 0:
        raise ValidationError("--target-fps must be positive")
    if args.seed < 0:
        raise ValidationError("--seed cannot be negative")
    # Resolve the backend eagerly: an unknown name is an argument
    # mistake (one-line error, exit 2), not a mid-serve traceback.
    get_backend(args.backend)
    if args.shards < 1:
        raise ValidationError("--shards must be at least 1")
    if args.tolerance is not None:
        if args.render_mode != "approx":
            raise ValidationError(
                "--tolerance is only valid with --render-mode approx"
            )
        if not 0.0 <= args.tolerance <= 1.0:
            raise ValidationError("--tolerance must be in [0, 1]")
    _validate_pipeline_args(args)
    _validate_content_cache_args(args)


def make_sessions(args: argparse.Namespace) -> list[StreamSession]:
    """Deterministic per-client sessions from the CLI arguments."""
    spec = CATALOG[args.scene]
    backend = "approx" if args.render_mode == "approx" else args.backend
    adaptive = args.target_fps is not None and args.qos == "adaptive"
    config = streaming_config(
        backend=backend, cache_policy=args.cache_policy
    )
    if args.shards > 1 and not adaptive:
        # No controller to escalate: every frame shards statically.
        config = replace(config, shards=args.shards)
    qos = None
    if args.target_fps is not None:
        qos = (
            QoSPolicy.fixed()
            if args.qos == "fixed"
            else QoSPolicy(max_shards=args.shards)
        )
    sessions = []
    for i in range(args.sessions):
        trajectory = CameraTrajectory.for_scene(
            spec,
            kind=args.trajectory,
            n_frames=args.frames,
            seed=args.seed + i,
            detail=args.detail,
            phase_deg=i * 360.0 / args.sessions,
        )
        sessions.append(
            StreamSession(
                session_id=f"{args.scene}-{args.trajectory}-{i}",
                scene=args.scene,
                trajectory=trajectory,
                detail=args.detail,
                config=config,
                target_fps=args.target_fps,
                qos=qos,
                pipeline=args.pipeline,
            )
        )
    return sessions


def _run(args: argparse.Namespace, sessions: list[StreamSession]) -> int:
    models = None
    if args.pipeline == "digest":
        if args.models is not None:
            models = _load_models(args.models)
        else:
            # Self-calibration: one exact render of the requested
            # workload, then every session digests from it.
            models = WorkloadModelTable.calibrate(
                [args.scene],
                details=(args.detail,),
                trajectories=(args.trajectory,),
                n_frames=min(args.frames, 8),
                config=sessions[0].config,
                seed=args.seed,
            )
        print(
            f"digest pipeline: {len(models)} workload model(s) "
            + ("loaded" if args.models is not None else "calibrated")
        )
    with StreamServer(
        workers=args.workers,
        placement=args.placement,
        max_inflight=args.max_inflight,
        content_cache=_content_config(args),
        models=models,
    ) as server:
        server.warm_up()
        results, summary = server.serve_timed(sessions)
        content_totals = server.content_totals

    with_qos = args.target_fps is not None
    headers = [
        "session",
        "worker",
        "frames",
        "cold hit",
        "warm hit",
        "bin reuse",
        "sim FPS",
        "wall FPS",
    ]
    if with_qos:
        headers += ["miss rate", "mean detail"]
    rows = []
    for r in results:
        rep = r.report
        row = [
            r.session_id,
            r.worker,
            rep.n_frames,
            rep.cold_hit_rate,
            rep.warm_hit_rate,
            rep.binning_reuse,
            rep.mean_sim_fps,
            rep.wall_fps,
        ]
        if with_qos:
            row += [rep.deadline_miss_rate(), rep.mean_detail]
        rows.append(row)
    print(format_table(headers, rows))
    print(
        f"\nserved {summary.total_frames} frames over "
        f"{summary.workers} worker(s), '{args.placement}' placement: "
        f"{summary.sim_frames_per_sec:.1f} simulated frames/sec "
        f"(aggregate), {summary.wall_frames_per_sec:.2f} wall frames/sec"
    )
    if with_qos:
        misses = sum(
            1
            for r in results
            for f in r.report.frames
            if f.qos is not None and not f.qos.met
        )
        print(
            f"QoS ({args.qos}, {args.target_fps:g} Hz): "
            f"{misses}/{summary.total_frames} deadline misses"
        )
    if args.content_cache:
        _print_content_economics(content_totals)

    if args.json is not None:
        payload = {
            "scene": args.scene,
            "trajectory": args.trajectory,
            "pipeline": args.pipeline,
            "workers": summary.workers,
            "placement": args.placement,
            "target_fps": args.target_fps,
            "qos": args.qos if with_qos else None,
            "sim_frames_per_sec": summary.sim_frames_per_sec,
            "wall_frames_per_sec": summary.wall_frames_per_sec,
            **(
                {
                    "content_cache": economics_to_dict(content_totals),
                    "pose_quant": args.pose_quant,
                }
                if args.content_cache
                else {}
            ),
            "sessions": [r.report.to_dict() for r in results],
        }
        text = json.dumps(payload, indent=2)
        if args.json == "-":
            print(text)
        else:
            with open(args.json, "w") as fh:
                fh.write(text + "\n")
    return 0


# ----------------------------------------------------------------------
# The `fleet` subcommand: generated traffic over a multi-node fleet
# ----------------------------------------------------------------------
def build_fleet_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-stream fleet",
        description="Serve generated open-loop traffic over a fleet of "
        "stream-server nodes.",
    )
    parser.add_argument(
        "--nodes", type=int, default=2, help="initial fleet nodes (default: 2)"
    )
    parser.add_argument(
        "--node-workers",
        type=int,
        default=1,
        help="workers per node (default: 1)",
    )
    parser.add_argument(
        "--node-capacity",
        type=int,
        default=4,
        help="max concurrent sessions per node (default: 4)",
    )
    parser.add_argument(
        "--router",
        default="least",
        choices=ROUTERS,
        help="node selection: least-loaded or scene affinity "
        "(default: least)",
    )
    parser.add_argument(
        "--max-nodes",
        type=int,
        default=None,
        metavar="N",
        help="autoscaling ceiling; above --nodes enables queue-driven "
        "scale-up (default: --nodes, autoscaling off)",
    )
    parser.add_argument(
        "--min-nodes",
        type=int,
        default=None,
        metavar="N",
        help="autoscaling floor for idle-node drain (default: --nodes)",
    )
    parser.add_argument(
        "--no-migration",
        action="store_true",
        help="disable cross-node checkpoint-replay rebalancing",
    )
    parser.add_argument(
        "--mix",
        default="mixed",
        choices=sorted(MIXES),
        help="traffic archetype mix (default: mixed)",
    )
    parser.add_argument(
        "--rate",
        type=float,
        default=40.0,
        help="peak arrivals per simulated second (default: 40)",
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=0.5,
        help="arrival window in simulated seconds (default: 0.5)",
    )
    parser.add_argument(
        "--profile",
        default="constant",
        choices=PROFILES,
        help="arrival-rate shape (default: constant)",
    )
    parser.add_argument(
        "--detail",
        type=float,
        default=1.0,
        help="global detail multiplier on the generated sessions",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="traffic generator seed"
    )
    parser.add_argument(
        "--compact",
        action="store_true",
        help="generate compact sessions (one-pose trajectories, frame "
        "budgets on the session) — required at 10^5+ sessions; needs "
        "--pipeline digest and no --content-cache",
    )
    _add_pipeline_args(parser)
    _add_content_cache_args(parser)
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the fleet report as JSON ('-' for stdout)",
    )
    return parser


def validate_fleet_args(args: argparse.Namespace) -> None:
    """Reject invalid fleet arguments with :class:`ValidationError`."""
    if args.nodes < 1:
        raise ValidationError("--nodes must be at least 1")
    if args.node_workers < 1:
        raise ValidationError("--node-workers must be at least 1")
    if args.node_capacity < 1:
        raise ValidationError("--node-capacity must be at least 1")
    if args.rate <= 0:
        raise ValidationError("--rate must be positive")
    if args.duration <= 0:
        raise ValidationError("--duration must be positive")
    if args.detail <= 0:
        raise ValidationError("--detail must be positive")
    if args.max_nodes is not None and args.max_nodes < args.nodes:
        raise ValidationError("--max-nodes cannot be below --nodes")
    if args.min_nodes is not None and not 1 <= args.min_nodes <= args.nodes:
        raise ValidationError("--min-nodes must be in [1, --nodes]")
    if args.seed < 0:
        raise ValidationError("--seed cannot be negative")
    _validate_pipeline_args(args)
    if args.compact and args.pipeline != "digest":
        raise ValidationError("--compact requires --pipeline digest")
    if args.compact and args.content_cache:
        raise ValidationError(
            "--compact drops per-frame poses and cannot feed "
            "--content-cache"
        )
    _validate_content_cache_args(args)


def _fleet_models(args: argparse.Namespace) -> WorkloadModelTable | None:
    """The digest model table for a fleet serve (load or calibrate).

    Self-calibration covers every (scene, detail, trajectory class)
    the chosen mix can emit, at the CLI's global detail multiplier.
    """
    if args.pipeline != "digest":
        return None
    if args.models is not None:
        return _load_models(args.models)
    archetypes = MIXES[args.mix]
    scenes = sorted({a.scene for a in archetypes})
    details = sorted({a.detail * args.detail for a in archetypes})
    trajectories = sorted({a.trajectory for a in archetypes})
    return WorkloadModelTable.calibrate(
        scenes,
        details=details,
        trajectories=trajectories,
        n_frames=8,
        config=streaming_config(),
        seed=args.seed,
    )


def _run_fleet(args: argparse.Namespace) -> int:
    models = _fleet_models(args)
    if models is not None:
        print(
            f"digest pipeline: {len(models)} workload model(s) "
            + ("loaded" if args.models is not None else "calibrated")
        )
    generator = TrafficGenerator(
        mix=args.mix,
        rate=args.rate,
        duration=args.duration,
        seed=args.seed,
        profile=RateProfile(kind=args.profile),
        detail=args.detail,
        pipeline=args.pipeline,
        compact=args.compact,
    )
    arrivals = generator.generate()
    with EdgeFleet(
        nodes=args.nodes,
        node_workers=args.node_workers,
        router=args.router,
        node_capacity=args.node_capacity,
        min_nodes=args.min_nodes,
        max_nodes=args.max_nodes,
        migration=not args.no_migration,
        content_cache=_content_config(args),
        models=models,
    ) as fleet:
        result = fleet.serve(arrivals)

    rows = []
    for node_id, summary in sorted(result.node_summaries.items()):
        rows.append(
            [
                node_id,
                summary.sessions,
                summary.total_frames,
                summary.sim_makespan_seconds,
                summary.migrations,
                summary.recoveries,
            ]
        )
    print(
        format_table(
            ["node", "sessions", "frames", "busy s", "moves", "recoveries"],
            rows,
        )
    )
    summary = result.summary
    print(
        f"\nfleet served {summary.sessions} generated sessions "
        f"({args.mix} mix, {args.rate:g}/s x {args.duration:g}s, "
        f"seed {args.seed}): {summary.total_frames} frames, "
        f"{summary.sim_frames_per_sec:.1f} simulated frames/sec over "
        f"{result.peak_nodes} node(s), peak {result.peak_active} "
        f"concurrent session(s) ('{args.pipeline}' pipeline)"
    )
    print(
        f"router '{args.router}': max queue depth "
        f"{result.max_queue_depth}, mean admission delay "
        f"{result.mean_admission_delay * 1e3:.2f} ms (simulated), "
        f"{len(result.migrations)} cross-node migration(s), "
        f"{len(result.spawns)} spawn(s), {len(result.drains)} drain(s)"
    )
    if args.content_cache:
        _print_content_economics(result.content)
        print(
            f"bundle intern: {result.bundle_intern_hits} hit(s), "
            f"{result.bundle_intern_misses} build(s)"
        )

    if args.json is not None:
        payload = {
            "mix": args.mix,
            "rate": args.rate,
            "duration": args.duration,
            "seed": args.seed,
            "router": args.router,
            "pipeline": args.pipeline,
            "nodes": args.nodes,
            "peak_nodes": result.peak_nodes,
            "peak_active": result.peak_active,
            "sessions": summary.sessions,
            "total_frames": summary.total_frames,
            "sim_frames_per_sec": summary.sim_frames_per_sec,
            "sim_makespan_seconds": summary.sim_makespan_seconds,
            "max_queue_depth": result.max_queue_depth,
            "mean_admission_delay": result.mean_admission_delay,
            "migrations": len(result.migrations),
            **(
                {
                    "content_cache": economics_to_dict(result.content),
                    "pose_quant": args.pose_quant,
                    "bundle_intern_hits": result.bundle_intern_hits,
                    "bundle_intern_misses": result.bundle_intern_misses,
                }
                if args.content_cache
                else {}
            ),
            "autoscale_events": [
                {
                    "action": e.action,
                    "node": e.node,
                    "tick": e.tick,
                    "sim_time": e.sim_time,
                    "queue_depth": e.queue_depth,
                    "reaction_ticks": e.reaction_ticks,
                }
                for e in result.autoscale_events
            ],
            "node_summaries": {
                str(node_id): {
                    "sessions": s.sessions,
                    "total_frames": s.total_frames,
                    "sim_makespan_seconds": s.sim_makespan_seconds,
                    "migrations": s.migrations,
                    "recoveries": s.recoveries,
                }
                for node_id, s in sorted(result.node_summaries.items())
            },
        }
        text = json.dumps(payload, indent=2)
        if args.json == "-":
            print(text)
        else:
            with open(args.json, "w") as fh:
                fh.write(text + "\n")
    return 0


# ----------------------------------------------------------------------
# The `serve` subcommand: the asyncio gateway over a live server
# ----------------------------------------------------------------------
def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-stream serve",
        description="Run the asyncio serving gateway: clients connect "
        "over TCP, open sessions with a JSON hello, and stream frame "
        "metadata with checkpoint-backed reconnects "
        "(see docs/streaming.md, 'Serving gateway').",
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="listen address (default: 127.0.0.1 — loopback only)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=0,
        help="listen port; 0 binds an ephemeral port and prints it "
        "(default: 0)",
    )
    parser.add_argument(
        "--http-port",
        type=int,
        default=None,
        metavar="PORT",
        help="also serve GET /healthz and /stats on this HTTP port "
        "(0 = ephemeral; default: no HTTP shim)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes; 0 = in-process (default: 0)",
    )
    parser.add_argument(
        "--placement",
        default="load",
        choices=PLACEMENTS,
        help="session->worker policy (default: load)",
    )
    parser.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        metavar="N",
        help="admission control: serve at most N sessions concurrently "
        "(default: unlimited)",
    )
    parser.add_argument(
        "--queue-frames",
        type=int,
        default=8,
        metavar="N",
        help="per-connection send-queue bound; a client this many "
        "frames behind pauses its own session until it catches up "
        "(default: 8)",
    )
    parser.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="on shutdown, wait this long for connected sessions to "
        "finish before force-detaching stalled clients (their sessions "
        "are checkpointed like a disconnect; default: 30)",
    )
    parser.add_argument(
        "--exit-after-sessions",
        type=int,
        default=None,
        metavar="N",
        help="drain and exit once N sessions have finished and every "
        "client has disconnected (CI smoke; default: serve until "
        "SIGINT/SIGTERM)",
    )
    _add_pipeline_args(parser)
    _add_content_cache_args(parser)
    return parser


def validate_serve_args(args: argparse.Namespace) -> None:
    """Reject invalid serve arguments with :class:`ValidationError`."""
    if not 0 <= args.port <= 65535:
        raise ValidationError("--port must be in [0, 65535]")
    if args.http_port is not None and not 0 <= args.http_port <= 65535:
        raise ValidationError("--http-port must be in [0, 65535]")
    if args.workers < 0:
        raise ValidationError("--workers cannot be negative")
    if args.max_inflight is not None and args.max_inflight < 1:
        raise ValidationError("--max-inflight must be at least 1")
    if args.queue_frames < 2:
        raise ValidationError("--queue-frames must be at least 2")
    if args.drain_timeout <= 0:
        raise ValidationError("--drain-timeout must be positive")
    if args.exit_after_sessions is not None and args.exit_after_sessions < 1:
        raise ValidationError("--exit-after-sessions must be at least 1")
    if args.pipeline == "digest" and args.models is None:
        # Clients name their scenes at connect time, so there is no
        # workload to self-calibrate against up front.
        raise ValidationError(
            "serve --pipeline digest needs --models (see the "
            "'calibrate' subcommand)"
        )
    _validate_pipeline_args(args)
    _validate_content_cache_args(args)


async def _serve_gateway(args: argparse.Namespace, server) -> int:
    import signal

    # Local import: the asyncio gateway stays out of the non-serving
    # CLI paths entirely.
    from repro.stream.gateway import StreamGateway

    gateway = StreamGateway(
        server,
        host=args.host,
        port=args.port,
        send_queue_frames=args.queue_frames,
        pipeline=args.pipeline,
    )
    await gateway.start()
    # Flushed one-liner so scripts (and the CI smoke) can parse the
    # ephemeral port.
    print(f"listening on {gateway.host}:{gateway.port}", flush=True)
    if args.http_port is not None:
        http_port = await gateway.start_http(args.http_port)
        print(f"http on {gateway.host}:{http_port}", flush=True)

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass  # platform without signal handlers (e.g. Windows)
    try:
        if args.exit_after_sessions is not None:
            while not stop.is_set():
                live = gateway.stats()
                if (
                    live["sessions_done"] >= args.exit_after_sessions
                    and live["sessions_connected"] == 0
                ):
                    break
                await asyncio.sleep(0.05)
        else:  # pragma: no cover - interactive mode, exercised manually
            await stop.wait()
    finally:
        # Bounded drain: a SIGINT must stop the process even when a
        # connected client has stopped reading (its session is parked
        # like a disconnect once the deadline passes).
        results = await gateway.stop(drain_timeout=args.drain_timeout)
    reconnects = sum(1 for s in gateway.connection_stats if s.resumed)
    print(
        f"served {len(results)} session(s), "
        f"{sum(r.report.n_frames for r in results)} frame(s) over "
        f"{len(gateway.connection_stats)} connection(s) "
        f"({reconnects} reconnect(s))"
    )
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    models = _load_models(args.models) if args.models is not None else None
    server = StreamServer(
        workers=args.workers,
        placement=args.placement,
        max_inflight=args.max_inflight,
        content_cache=_content_config(args),
        models=models,
    )
    try:
        return asyncio.run(_serve_gateway(args, server))
    finally:
        server.close()


# ----------------------------------------------------------------------
# The `calibrate` subcommand: build a workload-model table for digest
# ----------------------------------------------------------------------
def build_calibrate_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-stream calibrate",
        description="Calibrate digest-pipeline workload models by "
        "running the exact pipeline, and write the table as JSON.",
    )
    parser.add_argument(
        "--scenes",
        nargs="+",
        default=["bicycle"],
        metavar="SCENE",
        help="catalog scenes to calibrate (default: bicycle)",
    )
    parser.add_argument(
        "--details",
        nargs="+",
        type=float,
        default=[1.0],
        metavar="D",
        help="detail rungs to calibrate per scene (default: 1.0)",
    )
    parser.add_argument(
        "--trajectories",
        nargs="+",
        default=["orbit"],
        choices=TRAJECTORIES,
        metavar="KIND",
        help="trajectory classes to calibrate (default: orbit)",
    )
    parser.add_argument(
        "--frames",
        type=int,
        default=8,
        help="calibration frames per model (default: 8)",
    )
    parser.add_argument(
        "--backend",
        default="vectorized",
        help="render backend for the calibration runs (default: vectorized)",
    )
    parser.add_argument(
        "--cache-policy",
        default="reuse_distance",
        choices=sorted(POLICIES),
        help="reuse-cache policy (default: reuse_distance)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="calibration trajectory seed"
    )
    parser.add_argument(
        "--jitter",
        type=float,
        default=0.0,
        metavar="J",
        help="deterministic per-frame latency jitter fraction in [0, 1) "
        "applied by digest streams replaying these models (default: 0)",
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        default="-",
        help="where to write the model-table JSON (default: stdout)",
    )
    return parser


def validate_calibrate_args(args: argparse.Namespace) -> None:
    """Reject invalid calibration arguments with :class:`ValidationError`."""
    for scene in args.scenes:
        if scene not in CATALOG:
            raise ValidationError(
                f"unknown scene '{scene}'; choose from "
                + ", ".join(sorted(CATALOG))
            )
    if any(d <= 0 for d in args.details):
        raise ValidationError("--details must all be positive")
    if args.frames <= 0:
        raise ValidationError("--frames must be positive")
    if args.seed < 0:
        raise ValidationError("--seed cannot be negative")
    if not 0.0 <= args.jitter < 1.0:
        raise ValidationError("--jitter must be in [0, 1)")
    get_backend(args.backend)


def _run_calibrate(args: argparse.Namespace) -> int:
    config = streaming_config(
        backend=args.backend, cache_policy=args.cache_policy
    )
    table = WorkloadModelTable.calibrate(
        args.scenes,
        details=tuple(args.details),
        trajectories=tuple(args.trajectories),
        n_frames=args.frames,
        config=config,
        seed=args.seed,
        jitter=args.jitter,
    )
    text = table.to_json()
    if args.out == "-":
        print(text)
    else:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
        print(
            f"calibrated {len(table)} workload model(s) over "
            f"{len(args.scenes)} scene(s) x {len(args.details)} detail "
            f"rung(s) x {len(args.trajectories)} trajectory class(es) "
            f"-> {args.out}"
        )
    return 0


def main(argv: list[str] | None = None) -> int:
    # Argument-shaped failures exit like argparse does: one line on
    # stderr and status 2, never a traceback.  That covers validation
    # AND every ValidationError raised while setting a run up — a
    # missing or malformed --models file surfaces here, not as a
    # FileNotFoundError/JSONDecodeError traceback.  Non-ValidationError
    # failures during a serve are server bugs and propagate.
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    try:
        return _dispatch(argv)
    except ValidationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _dispatch(argv: list[str]) -> int:
    # Manual subcommand dispatch keeps the original flat argument set
    # (and every existing invocation) working unchanged.
    if argv and argv[0] == "calibrate":
        calibrate_args = build_calibrate_parser().parse_args(argv[1:])
        validate_calibrate_args(calibrate_args)
        return _run_calibrate(calibrate_args)
    if argv and argv[0] == "fleet":
        fleet_args = build_fleet_parser().parse_args(argv[1:])
        validate_fleet_args(fleet_args)
        return _run_fleet(fleet_args)
    if argv and argv[0] == "serve":
        serve_args = build_serve_parser().parse_args(argv[1:])
        validate_serve_args(serve_args)
        return _run_serve(serve_args)
    args = build_parser().parse_args(argv)
    validate_args(args)
    sessions = make_sessions(args)
    if args.tolerance is not None:
        # Environment, not a process-global override: worker processes
        # inherit the environment, so approx renders use the same
        # tolerance on every worker.
        os.environ[APPROX_TOLERANCE_ENV_VAR] = str(args.tolerance)
    return _run(args, sessions)


if __name__ == "__main__":
    raise SystemExit(main())
