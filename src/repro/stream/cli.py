"""The ``repro-stream`` command line.

Streams one or more client sessions over a scene and prints per-session
serving metrics — cold vs. warm cache hit rates, binning reuse, and
simulated / wall throughput.  Installed as the ``repro-stream`` console
script; also runnable without installation:

    PYTHONPATH=src python -m repro.stream --scene bicycle \\
        --trajectory orbit --frames 16 --sessions 2 --workers 0

Each session gets its own trajectory: session ``i`` uses seed
``seed + i`` (head-jitter) or phase offset ``i`` (orbit), so concurrent
clients view the scene from distinct, deterministic paths.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.core.reuse_cache import POLICIES
from repro.harness import format_table
from repro.scenes.catalog import CATALOG
from repro.stream.pipeline import streaming_config
from repro.stream.scheduler import PLACEMENTS
from repro.stream.server import StreamServer, StreamSession
from repro.stream.trajectory import CameraTrajectory

TRAJECTORIES = ("orbit", "dolly", "head_jitter", "frozen")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-stream",
        description="Stream frame sequences over catalog scenes "
        "with cross-frame reuse.",
    )
    parser.add_argument(
        "--scene",
        default="bicycle",
        choices=sorted(CATALOG),
        help="catalog scene (default: bicycle)",
    )
    parser.add_argument(
        "--trajectory",
        default="orbit",
        choices=TRAJECTORIES,
        help="camera path archetype (default: orbit)",
    )
    parser.add_argument(
        "--frames", type=int, default=16, help="frames per session (default: 16)"
    )
    parser.add_argument(
        "--sessions", type=int, default=1, help="concurrent sessions (default: 1)"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes; 0 = in-process (default: 0)",
    )
    parser.add_argument(
        "--placement",
        default="load",
        choices=PLACEMENTS,
        help="session->worker policy: load-aware or round-robin "
        "(default: load)",
    )
    parser.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        metavar="N",
        help="admission control: serve at most N sessions concurrently, "
        "queueing the rest (default: unlimited)",
    )
    parser.add_argument(
        "--detail", type=float, default=1.0, help="scene detail multiplier"
    )
    parser.add_argument(
        "--backend",
        default="vectorized",
        help="render backend (default: vectorized)",
    )
    parser.add_argument(
        "--cache-policy",
        default="reuse_distance",
        choices=sorted(POLICIES),
        help="reuse-cache policy (default: reuse_distance)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="base seed for jittered paths"
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the full per-frame report as JSON ('-' for stdout)",
    )
    return parser


def make_sessions(args: argparse.Namespace) -> list[StreamSession]:
    """Deterministic per-client sessions from the CLI arguments."""
    spec = CATALOG[args.scene]
    config = streaming_config(
        backend=args.backend, cache_policy=args.cache_policy
    )
    sessions = []
    for i in range(args.sessions):
        trajectory = CameraTrajectory.for_scene(
            spec,
            kind=args.trajectory,
            n_frames=args.frames,
            seed=args.seed + i,
            detail=args.detail,
            phase_deg=i * 360.0 / args.sessions,
        )
        sessions.append(
            StreamSession(
                session_id=f"{args.scene}-{args.trajectory}-{i}",
                scene=args.scene,
                trajectory=trajectory,
                detail=args.detail,
                config=config,
            )
        )
    return sessions


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.frames <= 0:
        print("error: --frames must be positive", file=sys.stderr)
        return 2
    if args.sessions <= 0:
        print("error: --sessions must be positive", file=sys.stderr)
        return 2
    if args.max_inflight is not None and args.max_inflight < 1:
        print("error: --max-inflight must be at least 1", file=sys.stderr)
        return 2

    sessions = make_sessions(args)
    with StreamServer(
        workers=args.workers,
        placement=args.placement,
        max_inflight=args.max_inflight,
    ) as server:
        server.warm_up()
        results, summary = server.serve_timed(sessions)

    rows = []
    for r in results:
        rep = r.report
        rows.append(
            [
                r.session_id,
                r.worker,
                rep.n_frames,
                rep.cold_hit_rate,
                rep.warm_hit_rate,
                rep.binning_reuse,
                rep.mean_sim_fps,
                rep.wall_fps,
            ]
        )
    print(
        format_table(
            [
                "session",
                "worker",
                "frames",
                "cold hit",
                "warm hit",
                "bin reuse",
                "sim FPS",
                "wall FPS",
            ],
            rows,
        )
    )
    print(
        f"\nserved {summary.total_frames} frames over "
        f"{summary.workers} worker(s), '{args.placement}' placement: "
        f"{summary.sim_frames_per_sec:.1f} simulated frames/sec "
        f"(aggregate), {summary.wall_frames_per_sec:.2f} wall frames/sec"
    )

    if args.json is not None:
        payload = {
            "scene": args.scene,
            "trajectory": args.trajectory,
            "workers": summary.workers,
            "placement": args.placement,
            "sim_frames_per_sec": summary.sim_frames_per_sec,
            "wall_frames_per_sec": summary.wall_frames_per_sec,
            "sessions": [r.report.to_dict() for r in results],
        }
        text = json.dumps(payload, indent=2)
        if args.json == "-":
            print(text)
        else:
            with open(args.json, "w") as fh:
                fh.write(text + "\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
