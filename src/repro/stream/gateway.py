"""Asyncio serving gateway: stream sessions over real connections.

Everything below :class:`StreamGateway` in this repository is a
library — sessions are synthetic descriptors handed to
:class:`~repro.stream.server.StreamServer` or
:class:`~repro.stream.fleet.EdgeFleet` in-process.  This module is the
wire boundary the paper's AR/VR deployment needs: clients connect over
TCP (loopback in CI — the test suite never leaves 127.0.0.1), request
a session with a JSON ``hello``, and receive one message per rendered
frame carrying the QoS metadata a viewer adapts on (detail rung,
deadline verdict, serving tier, simulated seconds).

**Framing.**  Length-prefixed JSON: every message is a 4-byte
big-endian unsigned length followed by that many bytes of UTF-8 JSON.
Client→server types: ``hello`` (open or resume a session), ``bye``
(detach cleanly).  Server→client types: ``welcome``, ``frame``,
``end`` (terminal per-session report), ``error``.

**Reconnects.**  A dropped connection does not kill the session: the
gateway extracts it from the backend — descriptor, latest
:class:`~repro.stream.checkpoint.SessionCheckpoint`, and the frames
streamed so far — and parks it.  A later ``hello`` with
``resume: true`` injects it back (checkpoint replay is byte-identical,
so the resumed stream renders exactly what an uninterrupted one would)
and re-sends the frame metadata the client missed, judged by the
``last_frame`` index it reports.

**Backpressure.**  Each connection owns a bounded send queue drained
by one writer task.  Before every backend tick the pump pauses
dispatch for any session whose queue is full
(:meth:`StreamServer.pause_session`) and resumes it when the client
catches up — a slow client freezes *its own* stream instead of growing
an unbounded buffer, and every other session keeps ticking.  A tick
produces at most one frame per session, so a queue with a free slot
can never overflow.

**Shutdown.**  :meth:`StreamGateway.stop` stops accepting, keeps
ticking until every *connected* session finishes (drain), flushes and
closes the send queues, then closes the backend serve and returns the
merged results (parked sessions included, reported as far as they
got).  A dead peer can never hang the server: a writer-side connection
error closes that connection's send path (blocked replay sends raise
and the session parks), and a connected client that stops reading is
force-detached after the drain deadline — checkpointed exactly like a
disconnect — so ``stop`` always returns.

The gateway is wire-side telemetry only: simulated physics comes
exclusively from the backend, and the ``perf_counter`` readings here
(restore latency, connection accounting) never feed it.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
import time
from dataclasses import dataclass

from repro.errors import ValidationError
from repro.scenes.catalog import CATALOG
from repro.stream.checkpoint import SessionCheckpoint
from repro.stream.pipeline import PIPELINES, FrameRecord, StreamReport
from repro.stream.qos import QoSPolicy
from repro.stream.reporting import (
    ConnectionStats,
    SessionResult,
    frame_evidence,
    report_evidence,
)
from repro.stream.server import StreamSession
from repro.stream.trajectory import CameraTrajectory

__all__ = [
    "GatewayClient",
    "StreamGateway",
    "encode_message",
    "read_message",
    "session_from_payload",
]

#: Wire protocol revision; ``hello`` may pin it, mismatches error out.
PROTOCOL_VERSION = 1

#: 4-byte big-endian unsigned message length.
_HEADER = struct.Struct("!I")

#: Upper bound on one message's JSON payload — a corrupt or hostile
#: length prefix must not allocate gigabytes.
MAX_MESSAGE_BYTES = 8 * 1024 * 1024

#: Trajectory kinds a ``hello`` may request (mirrors
#: :meth:`CameraTrajectory.for_scene`).
TRAJECTORY_KINDS = ("orbit", "dolly", "head_jitter", "frozen")


# ----------------------------------------------------------------------
# Wire framing
# ----------------------------------------------------------------------
def encode_message(message: dict) -> bytes:
    """Frame one JSON message: length prefix + compact UTF-8 body."""
    data = json.dumps(
        message, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    if len(data) > MAX_MESSAGE_BYTES:
        raise ValidationError(
            f"message of {len(data)} bytes exceeds the "
            f"{MAX_MESSAGE_BYTES}-byte wire limit"
        )
    return _HEADER.pack(len(data)) + data


async def read_message(reader: asyncio.StreamReader) -> dict | None:
    """Read one framed message; ``None`` on EOF (clean or mid-frame).

    A syntactically invalid frame (oversized length prefix, non-JSON
    body, non-object payload) raises :class:`ValidationError` — the
    peer is speaking the wrong protocol, not hanging up.
    """
    try:
        header = await reader.readexactly(_HEADER.size)
    except (asyncio.IncompleteReadError, ConnectionError):
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_MESSAGE_BYTES:
        raise ValidationError(
            f"incoming frame of {length} bytes exceeds the "
            f"{MAX_MESSAGE_BYTES}-byte wire limit"
        )
    try:
        data = await reader.readexactly(length)
    except (asyncio.IncompleteReadError, ConnectionError):
        return None
    try:
        message = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ValidationError(f"message is not valid JSON: {exc}") from exc
    if not isinstance(message, dict) or not isinstance(
        message.get("type"), str
    ):
        raise ValidationError("message must be a JSON object with a 'type'")
    return message


# ----------------------------------------------------------------------
# Session descriptors over the wire
# ----------------------------------------------------------------------
def _number(value, cast, label: str):
    """Coerce a client-supplied numeric field.

    Malformed input (``"x"``, a list, ...) raises
    :class:`ValidationError` — the documented ``error`` reply — rather
    than the bare ``ValueError``/``TypeError`` the handler does not
    catch (which would drop the connection with an unhandled task
    exception instead of answering).
    """
    try:
        return cast(value)
    except (TypeError, ValueError) as exc:
        raise ValidationError(
            f"'{label}' must be a number, got {value!r}"
        ) from exc


def session_from_payload(
    payload, default_pipeline: str = "exact"
) -> StreamSession:
    """Build a :class:`StreamSession` from a ``hello`` descriptor.

    Every field is validated; errors come back as
    :class:`ValidationError` (the gateway relays the message in an
    ``error`` frame instead of dropping the connection silently).
    ``default_pipeline`` applies when the descriptor omits
    ``pipeline`` (the ``repro-stream serve --pipeline`` default).
    """
    if not isinstance(payload, dict):
        raise ValidationError("hello needs a 'session' object")
    session_id = payload.get("session_id")
    if not isinstance(session_id, str) or not session_id:
        raise ValidationError("session descriptor needs a 'session_id'")
    scene = payload.get("scene")
    if scene not in CATALOG:
        raise ValidationError(
            f"unknown scene {scene!r}; choose from "
            + ", ".join(sorted(CATALOG))
        )
    detail = _number(payload.get("detail", 1.0), float, "detail")
    trajectory = payload.get("trajectory") or {}
    if not isinstance(trajectory, dict):
        raise ValidationError("'trajectory' must be a JSON object")
    kind = trajectory.get("kind", "orbit")
    if kind not in TRAJECTORY_KINDS:
        raise ValidationError(
            f"unknown trajectory kind {kind!r}; choose from "
            + ", ".join(TRAJECTORY_KINDS)
        )
    n_frames = _number(
        trajectory.get("n_frames", payload.get("frames", 16)),
        int,
        "n_frames",
    )
    if n_frames < 1:
        raise ValidationError("a session needs at least one frame")
    pipeline = payload.get("pipeline", default_pipeline)
    if pipeline not in PIPELINES:
        raise ValidationError(
            f"unknown pipeline {pipeline!r}; choose from "
            + ", ".join(PIPELINES)
        )
    qos_mode = payload.get("qos", "adaptive")
    if qos_mode not in ("adaptive", "fixed"):
        raise ValidationError("'qos' must be 'adaptive' or 'fixed'")
    target_fps = payload.get("target_fps")
    camera = CameraTrajectory.for_scene(
        CATALOG[scene],
        kind,
        n_frames=n_frames,
        seed=_number(trajectory.get("seed", 0), int, "seed"),
        detail=detail,
        phase_deg=_number(
            trajectory.get("phase_deg", 0.0), float, "phase_deg"
        ),
    )
    return StreamSession(
        session_id=session_id,
        scene=scene,
        trajectory=camera,
        detail=detail,
        keep_images=bool(payload.get("keep_images", False)),
        target_fps=(
            None
            if target_fps is None
            else _number(target_fps, float, "target_fps")
        ),
        qos=QoSPolicy.fixed() if qos_mode == "fixed" else None,
        pipeline=pipeline,
    )


# ----------------------------------------------------------------------
# Gateway internals
# ----------------------------------------------------------------------
@dataclass
class _DetachedSession:
    """A disconnected client's parked stream, ready to resume."""

    session: StreamSession
    checkpoint: SessionCheckpoint | None
    report: StreamReport


class _Connection:
    """One accepted connection: reader loop state + bounded send queue."""

    def __init__(
        self,
        gateway: "StreamGateway",
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        bound: int,
    ) -> None:
        self.gateway = gateway
        self.reader = reader
        self.writer = writer
        peer = writer.get_extra_info("peername")
        label = f"{peer[0]}:{peer[1]}" if isinstance(peer, tuple) else "?"
        self.stats = ConnectionStats(peer=label)
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=bound)
        self.session_id: str | None = None
        self.keep_images = False
        #: Ship raw image bytes in frame messages (hello opt-in; needs
        #: ``keep_images`` on the session so the backend retains them).
        self.deliver_images = False
        self.writer_task: asyncio.Task | None = None
        self._close_started = False
        #: Set once the writer hit a connection error: nothing will
        #: ever be written again, so sends must not wait for queue
        #: space a dead writer will never free.
        self.dead = False

    def _note_depth(self) -> None:
        self.stats.queue_peak = max(self.stats.queue_peak, self.queue.qsize())

    def mark_dead(self) -> None:
        """Close the send path after a writer-side connection error.

        Drains the queue so coroutines blocked in :meth:`send` wake up
        (and then raise), letting the connection handler fall through
        to teardown — a vanished peer must never wedge a replay loop,
        and through it, drain shutdown.
        """
        if self.dead:
            return
        self.dead = True
        while True:
            try:
                self.queue.get_nowait()
            except asyncio.QueueEmpty:
                break
        self.gateway._wake.set()

    def kill(self) -> None:
        """Force-detach primitive: sever the wire *now*.

        Marks the connection dead (unblocking any pending send) and
        aborts the transport, so the handler's read returns and
        teardown parks the session exactly like a client disconnect.
        """
        self.mark_dead()
        transport = self.writer.transport
        if transport is not None:
            transport.abort()

    def try_send(self, message: dict) -> None:
        """Enqueue without waiting — the pump's backpressure invariant
        guarantees a free slot (full queues pause dispatch first).
        Dropped silently on a dead connection: the session is about to
        be parked and the frame replays on reconnect."""
        if self.dead:
            return
        self.queue.put_nowait(message)
        self._note_depth()

    async def send(self, message: dict) -> None:
        """Enqueue, waiting for queue space (connection-local only).

        Raises :class:`ConnectionError` once the connection is dead:
        queue slots only free when the writer drains them, so waiting
        on a dead writer would block forever.
        """
        if self.dead:
            raise ConnectionError("peer is gone; send queue is closed")
        await self.queue.put(message)
        if self.dead:
            # The writer died while we waited for a slot; the message
            # will never reach the wire.
            raise ConnectionError("peer is gone; send queue is closed")
        self._note_depth()

    def send_soon(self, message: dict) -> None:
        """Enqueue now if possible, else hand the wait to a task.

        Used for the terminal ``end`` message, which may arrive while
        the queue is momentarily full; the session is finished, so at
        most one such deferred put can exist per connection and
        ordering is preserved.
        """
        try:
            self.try_send(message)
        except asyncio.QueueFull:
            asyncio.get_running_loop().create_task(self._send_quietly(message))

    async def _send_quietly(self, message: dict) -> None:
        try:
            await self.send(message)
        except ConnectionError:
            pass  # Peer vanished first; the report survives in the backend.

    async def close(self, flush_timeout: float = 5.0) -> None:
        """Flush the send queue (best effort) and close the socket.

        Every flush wait is bounded: a peer that stopped reading must
        not pin shutdown, so after ``flush_timeout`` the connection is
        aborted with whatever made it onto the wire.
        """
        if self._close_started:
            return
        self._close_started = True
        if self.writer_task is not None:
            if not self.writer_task.done():
                try:
                    # The sentinel queues behind every pending message,
                    # so the writer flushes before exiting.
                    self.queue.put_nowait(None)
                except asyncio.QueueFull:
                    # Stalled client with a full queue: force-close.
                    self.writer_task.cancel()
            try:
                # On timeout wait_for cancels the writer task itself.
                await asyncio.wait_for(self.writer_task, flush_timeout)
            except (
                asyncio.TimeoutError,
                asyncio.CancelledError,
                ConnectionError,
                OSError,
            ):
                pass
        self.writer.close()
        try:
            await asyncio.wait_for(self.writer.wait_closed(), flush_timeout)
        except (asyncio.TimeoutError, ConnectionError, OSError):
            # Unflushed bytes and a vanished reader: drop the link.
            transport = self.writer.transport
            if transport is not None:
                transport.abort()


class StreamGateway:
    """Serve stream sessions to real clients over loopback/TCP.

    Parameters
    ----------
    backend:
        A :class:`~repro.stream.server.StreamServer` or
        :class:`~repro.stream.fleet.EdgeFleet`.  The gateway drives it
        through the incremental ``begin``/``submit``/``step``/
        ``finish`` protocol (opening the serve itself unless the
        caller already did) — both backends speak it, so one gateway
        fronts a single node or a whole fleet.
    host / port:
        Listen address; port 0 binds an ephemeral port (see
        :attr:`port` after :meth:`start`).
    send_queue_frames:
        Per-connection send-queue bound.  The backpressure guarantee
        asserted by the tests: a connection's queue never holds more
        than this many undelivered messages.
    """

    def __init__(
        self,
        backend,
        host: str = "127.0.0.1",
        port: int = 0,
        send_queue_frames: int = 8,
        pipeline: str = "exact",
        sndbuf: int | None = None,
    ) -> None:
        if send_queue_frames < 2:
            raise ValidationError(
                "send queue needs at least 2 slots (welcome + frame)"
            )
        if pipeline not in PIPELINES:
            raise ValidationError(
                f"unknown pipeline {pipeline!r}; choose from "
                + ", ".join(PIPELINES)
            )
        self.backend = backend
        self.host = host
        self._requested_port = port
        self.send_queue_frames = send_queue_frames
        self.pipeline = pipeline
        #: Optional ``SO_SNDBUF`` cap per accepted socket.  Bounds the
        #: kernel-side buffer a stalled client can consume (and keeps
        #: the backpressure tests honest: without it, loopback TCP
        #: autotuning absorbs megabytes before the queue ever fills).
        self.sndbuf = sndbuf
        self._server: asyncio.base_events.Server | None = None
        self._http_server: asyncio.base_events.Server | None = None
        self._pump_task: asyncio.Task | None = None
        self._lock = asyncio.Lock()
        self._wake = asyncio.Event()
        self._by_session: dict[str, _Connection] = {}
        self._detached: dict[str, _DetachedSession] = {}
        self._paused: set[str] = set()
        #: Sessions frozen by their own handler (welcome/replay still
        #: being enqueued) — never auto-resumed by backpressure.
        self._held: set[str] = set()
        self._done: set[str] = set()
        self._connections: list[_Connection] = []
        self._closing = False
        self._bound_port: int | None = None
        self.results: list[SessionResult] | None = None
        self.backend_result = None

    # -- lifecycle ------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound port (valid after :meth:`start`)."""
        if self._bound_port is None:
            raise ValidationError("gateway is not started")
        return self._bound_port

    async def start(self) -> None:
        """Bind the listener, open the backend serve, start the pump."""
        if self._server is not None:
            raise ValidationError("gateway is already started")
        if not self.backend.serving:
            self.backend.begin([])
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self._requested_port
        )
        self._bound_port = self._server.sockets[0].getsockname()[1]
        self._pump_task = asyncio.create_task(self._pump_loop())

    async def stop(
        self, drain: bool = True, drain_timeout: float | None = 30.0
    ) -> list[SessionResult]:
        """Stop accepting, optionally drain, close, return results.

        ``drain=True`` keeps ticking until every *connected* session
        has finished its budget (parked/disconnected sessions do not
        block shutdown — they are reported as far as they streamed).
        A connected client that simply stops reading would pin the
        drain forever (its session stays backpressure-paused), so
        after ``drain_timeout`` seconds every still-connected session
        is force-detached — checkpointed and parked exactly like a
        disconnect — and shutdown completes; ``drain_timeout=None``
        waits unboundedly.  ``drain=False`` stops the pump immediately.
        """
        if self._server is None:
            raise ValidationError("gateway is not started")
        self._closing = True
        self._server.close()
        await self._server.wait_closed()
        if self._http_server is not None:
            self._http_server.close()
            await self._http_server.wait_closed()
        self._wake.set()
        if self._pump_task is not None:
            if drain:
                try:
                    await asyncio.wait_for(
                        asyncio.shield(self._pump_task), drain_timeout
                    )
                except asyncio.TimeoutError:
                    # Stalled connected clients: park their sessions
                    # the way a disconnect would and finish the drain.
                    for conn in list(self._by_session.values()):
                        conn.kill()
                    self._wake.set()
                    await self._pump_task
            else:
                self._pump_task.cancel()
                try:
                    await self._pump_task
                except asyncio.CancelledError:
                    pass
        for conn in list(self._connections):
            await conn.close()
        async with self._lock:
            raw = self.backend.finish()
            # EdgeFleet returns a FleetResult; StreamServer a list.
            results = list(getattr(raw, "results", raw))
            for session_id in sorted(self._detached):
                parked = self._detached[session_id]
                results.append(
                    SessionResult(
                        session_id=session_id,
                        scene=parked.session.scene,
                        worker=-1,
                        report=parked.report,
                    )
                )
            self.backend_result = raw
            self.results = results
        return self.results

    # -- introspection --------------------------------------------------
    @property
    def connection_stats(self) -> list[ConnectionStats]:
        """Wire accounting for every connection ever accepted."""
        return [conn.stats for conn in self._connections]

    def stats(self) -> dict:
        """Live counters (also served by the HTTP shim's ``/stats``)."""
        return {
            "connections_total": len(self._connections),
            "sessions_connected": len(self._by_session),
            "sessions_detached": len(self._detached),
            "sessions_done": len(self._done),
            "sessions_paused": len(self._paused),
            "backend_active": self.backend.n_active,
            "backend_queued": self.backend.n_queued,
            "draining": self._closing,
        }

    # -- the pump -------------------------------------------------------
    def _live_sessions(self) -> bool:
        return any(sid not in self._done for sid in self._by_session)

    def _dispatchable(self) -> bool:
        """Whether a backend tick *might* render anything right now.

        An optimistic hint: queued sessions count even when admission
        capacity is exhausted, so a step may still come back empty —
        the pump treats an empty tick as "nothing to do" and waits for
        a waker rather than re-stepping in a busy loop.
        """
        live = self.backend.n_active + self.backend.n_queued
        return live > len(self._paused) + len(self._held)

    def _apply_backpressure(self) -> None:
        """Pause full-queue sessions, resume drained ones (lock held)."""
        for session_id, conn in self._by_session.items():
            if session_id in self._held or session_id in self._done:
                continue
            if conn.dead:
                continue  # Teardown is imminent; leave the pause as-is.
            if not self.backend.has_session(session_id):
                continue
            if conn.queue.full():
                if session_id not in self._paused:
                    self.backend.pause_session(session_id)
                    self._paused.add(session_id)
                    conn.stats.pauses += 1
            elif session_id in self._paused:
                self.backend.resume_session(session_id)
                self._paused.discard(session_id)

    async def _pump_loop(self) -> None:
        """The single backend driver: tick, deliver, repeat.

        All backend mutation happens either here or in connection
        handlers holding :attr:`_lock`, so the synchronous backend is
        never entered concurrently; the CPU-heavy ``step`` runs in a
        worker thread to keep the event loop serving sockets.
        """
        while True:
            if self._closing and not self._live_sessions():
                return
            # Clear before deciding: a wake that fires during the
            # locked section below re-arms the event and the wait
            # returns immediately instead of losing the signal.
            self._wake.clear()
            async with self._lock:
                # Runs every iteration (not only when dispatchable):
                # when ALL sessions are paused, un-pausing drained
                # ones here is the only way forward.
                self._apply_backpressure()
                if self._dispatchable():
                    tick = await asyncio.to_thread(self.backend.step)
                else:
                    tick = None
            if tick is not None and (tick.frames or tick.done):
                self._deliver(tick)
                # Yield so handlers/writers interleave with a busy pump.
                await asyncio.sleep(0)
                continue
            # Nothing to do — or a step that rendered nothing because
            # every dispatchable-looking session is actually paused or
            # stuck behind admission (:meth:`_dispatchable` is an
            # optimistic hint): sleep until a waker fires instead of
            # hammering the backend with empty ticks.  The timeout is
            # a belt-and-braces backstop, not a correctness need.
            try:
                await asyncio.wait_for(self._wake.wait(), timeout=0.25)
            except asyncio.TimeoutError:
                pass

    def _frame_message(
        self, conn: _Connection, record: FrameRecord, replayed: bool
    ) -> dict:
        message = {
            "type": "frame",
            "session_id": conn.session_id,
            "replayed": replayed,
        }
        message.update(frame_evidence(record))
        if conn.deliver_images and record.image is not None:
            # Raw pixels as hex: heavyweight on purpose — a viewer that
            # wants frames gets real payloads, and a stalled one fills
            # socket buffers fast enough for backpressure to bite.
            message["image"] = record.image.tobytes().hex()
            message["image_shape"] = list(record.image.shape)
            message["image_dtype"] = str(record.image.dtype)
        return message

    def _deliver(self, tick) -> None:
        """Fan a tick's frames out to their connections' send queues."""
        for session_id, record in tick.frames:
            conn = self._by_session.get(session_id)
            if conn is None:
                # Disconnected while the tick was in flight: the frame
                # is in the session's report and replays on reconnect.
                continue
            conn.try_send(self._frame_message(conn, record, False))
        for session_id in tick.done:
            self._done.add(session_id)
            conn = self._by_session.get(session_id)
            if conn is None:
                continue
            conn.stats.clean_close = True
            conn.send_soon(
                {
                    "type": "end",
                    "session_id": session_id,
                    "report": report_evidence(
                        self.backend.report_of(session_id)
                    ),
                }
            )

    # -- connection handling --------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if self.sndbuf is not None:
            sock = writer.get_extra_info("socket")
            if sock is not None:
                sock.setsockopt(
                    socket.SOL_SOCKET, socket.SO_SNDBUF, self.sndbuf
                )
        conn = _Connection(self, reader, writer, self.send_queue_frames)
        self._connections.append(conn)
        conn.writer_task = asyncio.create_task(self._writer_loop(conn))
        try:
            await self._serve_connection(conn)
        except ValidationError as exc:
            conn.send_soon({"type": "error", "message": str(exc)})
        except (ConnectionError, OSError):
            pass
        finally:
            await self._teardown(conn)

    async def _writer_loop(self, conn: _Connection) -> None:
        """Drain one connection's send queue onto its socket."""
        try:
            while True:
                message = await conn.queue.get()
                if message is None:
                    return
                data = encode_message(message)
                conn.writer.write(data)
                await conn.writer.drain()
                conn.stats.messages_sent += 1
                conn.stats.bytes_sent += len(data)
                if message.get("type") == "frame":
                    conn.stats.frames_sent += 1
                # Queue space freed: the pump may have paused this
                # session and is waiting for exactly this signal.
                self._wake.set()
        except (ConnectionError, OSError):
            # Peer vanished mid-write: close the send path so blocked
            # senders (resume replay, deferred end messages) raise
            # instead of waiting on queue space that will never free;
            # the reader loop then tears the connection down
            # (checkpointing the session).
            conn.mark_dead()
            return

    async def _serve_connection(self, conn: _Connection) -> None:
        message = await read_message(conn.reader)
        if message is None:
            return
        if message["type"] != "hello":
            raise ValidationError(
                f"expected a hello, got {message['type']!r}"
            )
        protocol = message.get("protocol", PROTOCOL_VERSION)
        if protocol != PROTOCOL_VERSION:
            raise ValidationError(
                f"protocol {protocol!r} is not supported "
                f"(this gateway speaks {PROTOCOL_VERSION})"
            )
        if message.get("resume"):
            await self._resume_session(conn, message)
        else:
            await self._open_session(conn, message)
        while True:
            message = await read_message(conn.reader)
            if message is None:
                return
            if message["type"] == "bye":
                conn.stats.clean_close = True
                return
            raise ValidationError(
                f"unexpected message type {message['type']!r} mid-stream"
            )

    async def _open_session(self, conn: _Connection, message: dict) -> None:
        session = session_from_payload(
            message.get("session"), default_pipeline=self.pipeline
        )
        session_id = session.session_id
        async with self._lock:
            if self._closing:
                raise ValidationError("gateway is draining; try another node")
            if (
                session_id in self._by_session
                or session_id in self._detached
                or self.backend.has_session(session_id)
            ):
                raise ValidationError(
                    f"session id '{session_id}' is already in use"
                )
            self.backend.submit(session)
            conn.session_id = session_id
            conn.stats.session_id = session_id
            conn.keep_images = session.keep_images
            conn.deliver_images = bool(
                message.get("deliver_images", False)
            ) and session.keep_images
            # put_nowait on the fresh (empty) queue: the welcome is
            # enqueued before the session is visible to the pump, so
            # it always precedes frame 0 on the wire.
            conn.try_send(
                {
                    "type": "welcome",
                    "session_id": session_id,
                    "resumed": False,
                    "next_frame": 0,
                    "protocol": PROTOCOL_VERSION,
                }
            )
            self._by_session[session_id] = conn
        self._wake.set()

    async def _resume_session(self, conn: _Connection, message: dict) -> None:
        session_id = message.get("session_id")
        if not isinstance(session_id, str) or not session_id:
            raise ValidationError("resume hello needs a 'session_id'")
        last_frame = _number(message.get("last_frame", -1), int, "last_frame")
        restore_t0 = time.perf_counter()
        async with self._lock:
            if session_id in self._by_session:
                raise ValidationError(
                    f"session '{session_id}' is already connected"
                )
            parked = self._detached.pop(session_id, None)
            if parked is None:
                if self.backend.has_session(session_id) and (
                    self.backend.is_done(session_id)
                ):
                    # The session finished between the disconnect and
                    # this resume (its last frames were rendered while
                    # the tick was in flight): nothing to inject —
                    # replay the missed tail and close with the report.
                    tail = self._prepare_finished_resume(
                        conn, session_id, last_frame, restore_t0
                    )
                else:
                    raise ValidationError(
                        f"no detached session '{session_id}' to resume"
                    )
        if parked is None:
            # Bounded puts outside the lock: a slow client stalls only
            # its own replay, never the gateway.
            for message in tail:
                await conn.send(message)
            return
        async with self._lock:
            conn.deliver_images = bool(
                message.get("deliver_images", False)
            ) and parked.session.keep_images
            self.backend.inject_session(
                parked.session, parked.checkpoint, parked.report
            )
            # Hold the session until the missed frames are replayed —
            # a live frame must never overtake a replayed one.
            self.backend.pause_session(session_id)
            self._held.add(session_id)
            conn.session_id = session_id
            conn.stats.session_id = session_id
            conn.stats.resumed = True
            conn.keep_images = parked.session.keep_images
            next_frame = (
                parked.checkpoint.next_frame
                if parked.checkpoint is not None
                else len(parked.report.frames)
            )
            replay = [
                self._frame_message(conn, record, True)
                for record in parked.report.frames
                if record.frame > last_frame
            ]
            conn.try_send(
                {
                    "type": "welcome",
                    "session_id": session_id,
                    "resumed": True,
                    "next_frame": next_frame,
                    "replayed": len(replay),
                    "protocol": PROTOCOL_VERSION,
                }
            )
            self._by_session[session_id] = conn
        conn.stats.restore_seconds = time.perf_counter() - restore_t0
        for frame in replay:
            # Bounded puts: replaying a long history obeys the same
            # per-connection backpressure as live frames.
            await conn.send(frame)
        async with self._lock:
            self._held.discard(session_id)
            # Hand the (still backend-paused) session to the
            # backpressure logic, which resumes it as space allows.
            self._paused.add(session_id)
        self._wake.set()

    def _prepare_finished_resume(
        self,
        conn: _Connection,
        session_id: str,
        last_frame: int,
        restore_t0: float,
    ) -> list[dict]:
        """Resume of a session that already rendered its whole budget:
        enqueue the welcome, return the replay tail + end message for
        the caller to send outside the lock (which it holds here)."""
        conn.session_id = session_id
        conn.stats.session_id = session_id
        conn.stats.resumed = True
        conn.stats.clean_close = True
        self._done.add(session_id)
        report = self.backend.report_of(session_id)
        replay = [
            self._frame_message(conn, record, True)
            for record in report.frames
            if record.frame > last_frame
        ]
        conn.try_send(
            {
                "type": "welcome",
                "session_id": session_id,
                "resumed": True,
                "next_frame": len(report.frames),
                "replayed": len(replay),
                "protocol": PROTOCOL_VERSION,
            }
        )
        conn.stats.restore_seconds = time.perf_counter() - restore_t0
        replay.append(
            {
                "type": "end",
                "session_id": session_id,
                "report": report_evidence(report),
            }
        )
        return replay

    async def _teardown(self, conn: _Connection) -> None:
        async with self._lock:
            session_id = conn.session_id
            if (
                session_id is not None
                and self._by_session.get(session_id) is conn
            ):
                del self._by_session[session_id]
                self._held.discard(session_id)
                backend_paused = session_id in self._paused
                self._paused.discard(session_id)
                if self.backend.has_session(session_id) and not (
                    self.backend.is_done(session_id)
                ):
                    if backend_paused:
                        self.backend.resume_session(session_id)
                    self._detached[session_id] = _DetachedSession(
                        *self.backend.extract_session(session_id)
                    )
        await conn.close()
        self._wake.set()

    # -- HTTP shim ------------------------------------------------------
    async def start_http(self, port: int = 0) -> int:
        """Serve ``GET /healthz`` and ``GET /stats`` as JSON over HTTP.

        A dependency-free shim for probes and dashboards (plain
        ``asyncio`` HTTP/1.0 — no web framework in this repository).
        Returns the bound port.
        """
        if self._http_server is not None:
            raise ValidationError("HTTP shim is already started")
        self._http_server = await asyncio.start_server(
            self._handle_http, self.host, port
        )
        return self._http_server.sockets[0].getsockname()[1]

    async def _handle_http(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await asyncio.wait_for(reader.readline(), timeout=5.0)
            parts = request.decode("latin-1").split()
            path = parts[1] if len(parts) >= 2 else "/"
            while True:  # drain request headers
                line = await asyncio.wait_for(reader.readline(), timeout=5.0)
                if line in (b"", b"\r\n", b"\n"):
                    break
            if path == "/healthz":
                status, body = "200 OK", {"status": "ok"}
            elif path == "/stats":
                status, body = "200 OK", self.stats()
            else:
                status, body = "404 Not Found", {"error": "not found"}
            payload = json.dumps(body, sort_keys=True).encode("utf-8")
            writer.write(
                (
                    f"HTTP/1.0 {status}\r\n"
                    "Content-Type: application/json\r\n"
                    f"Content-Length: {len(payload)}\r\n"
                    "\r\n"
                ).encode("latin-1")
                + payload
            )
            await writer.drain()
        except (asyncio.TimeoutError, ConnectionError, OSError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass


# ----------------------------------------------------------------------
# Client helper (tests, benchmarks, CLI smoke)
# ----------------------------------------------------------------------
class GatewayClient:
    """Minimal asyncio client for the gateway's wire protocol.

    Used by the offline test suite and the loopback benchmark; real
    viewers only need the framing above, not this class.
    """

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self.reader: asyncio.StreamReader | None = None
        self.writer: asyncio.StreamWriter | None = None

    async def connect(self, rcvbuf: int | None = None) -> None:
        """Open the connection.

        ``rcvbuf`` pins ``SO_RCVBUF`` *before* connecting (which also
        disables kernel autotuning for the socket) — the backpressure
        tests use a deliberately tiny buffer so a non-reading client's
        TCP window closes after a frame or two instead of letting
        loopback absorb megabytes.
        """
        if rcvbuf is None:
            self.reader, self.writer = await asyncio.open_connection(
                self.host, self.port
            )
            return
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, rcvbuf)
        sock.setblocking(False)
        await asyncio.get_running_loop().sock_connect(
            sock, (self.host, self.port)
        )
        self.reader, self.writer = await asyncio.open_connection(sock=sock)

    async def send(self, message: dict) -> None:
        self.writer.write(encode_message(message))
        await self.writer.drain()

    async def recv(self, timeout: float = 30.0) -> dict | None:
        return await asyncio.wait_for(
            read_message(self.reader), timeout=timeout
        )

    async def hello(
        self,
        session: dict,
        deliver_images: bool = False,
        timeout: float = 30.0,
    ) -> dict:
        """Open a new session; returns the ``welcome`` (or raises on
        an ``error`` reply).  ``deliver_images`` asks for raw pixels in
        every frame message (the session must set ``keep_images``)."""
        message = {"type": "hello", "session": session}
        if deliver_images:
            message["deliver_images"] = True
        await self.send(message)
        return self._expect_welcome(await self.recv(timeout))

    async def resume(
        self,
        session_id: str,
        last_frame: int,
        deliver_images: bool = False,
        timeout: float = 30.0,
    ) -> dict:
        """Resume a detached session from ``last_frame``."""
        message = {
            "type": "hello",
            "resume": True,
            "session_id": session_id,
            "last_frame": last_frame,
        }
        if deliver_images:
            message["deliver_images"] = True
        await self.send(message)
        return self._expect_welcome(await self.recv(timeout))

    @staticmethod
    def _expect_welcome(message: dict | None) -> dict:
        if message is None:
            raise ValidationError("connection closed before welcome")
        if message["type"] == "error":
            raise ValidationError(message.get("message", "gateway error"))
        if message["type"] != "welcome":
            raise ValidationError(
                f"expected welcome, got {message['type']!r}"
            )
        return message

    async def stream(
        self, limit: int | None = None, timeout: float = 30.0
    ) -> tuple[list[dict], dict | None]:
        """Collect frame messages until ``end`` (or ``limit`` frames).

        Returns ``(frames, end)``; ``end`` is ``None`` when the limit
        stopped the read first.
        """
        frames: list[dict] = []
        while limit is None or len(frames) < limit:
            message = await self.recv(timeout)
            if message is None:
                return frames, None
            if message["type"] == "frame":
                frames.append(message)
            elif message["type"] == "end":
                return frames, message
            elif message["type"] == "error":
                raise ValidationError(message.get("message", "gateway error"))
        return frames, None

    async def bye(self) -> None:
        await self.send({"type": "bye"})

    async def close(self) -> None:
        if self.writer is not None:
            self.writer.close()
            try:
                await self.writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def abort(self) -> None:
        """Drop the connection abruptly (no bye, no graceful close) —
        the chaos tests' client-crash primitive."""
        if self.writer is not None:
            transport = self.writer.transport
            if transport is not None:
                transport.abort()
