"""Fleet-wide content-addressed render cache with cross-session dedup.

The paper's reuse cache exploits *inter-frame* redundancy on one
device; this module exploits *inter-viewer* redundancy across the
fleet.  A thousand users orbiting the same scene demand the same
frames, so one render product can serve many clients (the SplatBus
pattern: decouple the renderer from its viewers).

Architecture — four tiers chained by parent pointers::

    session tier (per stream)            8 MB
        └── worker tier (per worker)    32 MB
                └── node tier (per server/node)   64 MB
                        └── fleet tier (per EdgeFleet)  128 MB

A lookup walks the chain bottom-up; a hit at an ancestor *fills down*
(promotes the frame into every tier below the hit) so subsequent
lookups from the same session stay local.  A miss renders, then
write-through inserts the product into every tier up the chain.
Eviction is GreedyDual-Size: score ``(1 + hits) * compute_seconds``
(popularity times render cost), evict the minimum, least-recently-used
tiebreak — cheap unpopular frames go first.

Key derivation — the content address of a frame is a SHA-256 digest
over exactly the inputs that determine its pixels and timing:

1. **Scene content** — ``repr(SceneSpec)``: the spec is frozen and
   fully determines the generated scene (deterministic build).
2. **Camera intrinsics** — width/height/fx/fy/cx/cy.
3. **Quantized camera pose** — with ``pose_quant == q > 0``, the eye
   position's lattice cell ``floor(eye / q)``; viewers whose eyes fall
   in the same cell share a key.  With ``q == 0`` the exact pose bytes
   (rotation + translation) are the key: only bit-identical poses
   dedup.
4. **Animation clock** — ``SceneBundle.frame_clock(k)``, so dynamic
   scenes only dedup frames showing the same animation phase.
5. **Detail rung** — the LoD the frame was rendered at.
6. **Render mode** — backend, effective approx tolerance, fp16,
   shards, row interleaving, cross-tile overlap: everything in
   :class:`~repro.core.gbu.GBUConfig` that changes pixels or compute
   cycles.  ``cache_policy`` is deliberately *excluded*: the temporal
   cache policy changes neither the image nor the trace, and each
   session replays the cached trace through its own policy anyway.

Pose quantization snaps the *eye position only* to the cell center and
rebuilds the camera with :meth:`Camera.look_at` toward the scene
origin (all repository trajectories aim at the origin); quantizing
rotation-matrix elements directly would break orthonormality.  The
snapped camera is what actually gets rendered — canonical-pose
rendering — so a dedup-served image is byte-identical to what a fresh
render at the canonical pose produces, regardless of cache
temperature.

Correctness contract: a cache hit short-circuits only the *functional*
render.  Timing and temporal state advance exactly as a fresh render
would — the cached feature trace is replayed through the session's own
:class:`~repro.core.reuse_cache.TemporalReuseSimulator`, and step-3
seconds are recomputed with
:meth:`~repro.core.gbu.GBUDevice.replay_step3_seconds` (bit-identical
arithmetic).  The dedup benefit is host wall-clock, never simulated
physics, which is why checkpoint/restore and cross-node migration stay
byte-identical whether the cache was warm, cold, or mid-eviction.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.core.reuse_cache import CacheEconomics
from repro.errors import ValidationError
from repro.gaussians.camera import Camera
from repro.scenes.catalog import SceneBundle, SceneSpec, build_scene

#: Tier levels, innermost first — the lookup walk order.
TIER_LEVELS = ("session", "worker", "node", "fleet")

_MB = 1024 * 1024


@dataclass(frozen=True)
class ContentCacheConfig:
    """Knobs of the content-addressed cache (picklable: crosses the
    process boundary to subprocess workers).

    Attributes
    ----------
    pose_quant:
        Eye-position lattice pitch in scene units.  ``0.0`` disables
        snapping: only bit-identical poses share a key.
    session_bytes / worker_bytes / node_bytes / fleet_bytes:
        Per-tier capacity in bytes of cached frame payloads.
    """

    pose_quant: float = 0.0
    session_bytes: int = 8 * _MB
    worker_bytes: int = 32 * _MB
    node_bytes: int = 64 * _MB
    fleet_bytes: int = 128 * _MB

    def __post_init__(self) -> None:
        if self.pose_quant < 0:
            raise ValidationError("pose_quant must be >= 0")
        for level in TIER_LEVELS:
            if getattr(self, f"{level}_bytes") < 0:
                raise ValidationError(f"{level}_bytes must be >= 0")

    def tier_bytes(self, level: str) -> int:
        return getattr(self, f"{level}_bytes")


def canonical_camera(camera: Camera, pose_quant: float) -> Camera:
    """The camera actually rendered under pose quantization.

    Snaps the eye position to the center of its lattice cell and
    rebuilds the view toward the scene origin, recovering the vertical
    field of view from ``fy`` (the same formula the jitter trajectory
    uses).  With ``pose_quant == 0`` the camera is returned unchanged,
    so the exact-pose path renders exactly what the viewer asked for.
    """
    if pose_quant <= 0.0:
        return camera
    cell = np.floor(camera.position / pose_quant)
    snapped_eye = (cell + 0.5) * pose_quant
    fov_y_deg = float(2.0 * np.rad2deg(np.arctan(0.5 * camera.height / camera.fy)))
    return Camera.look_at(
        snapped_eye,
        np.zeros(3),
        width=camera.width,
        height=camera.height,
        fov_y_deg=fov_y_deg,
    )


def pose_cell(camera: Camera, pose_quant: float) -> tuple[int, int, int]:
    """The eye position's lattice cell (the dedup equivalence class)."""
    if pose_quant <= 0.0:
        raise ValidationError("pose_cell requires pose_quant > 0")
    cell = np.floor(camera.position / pose_quant)
    return tuple(int(c) for c in cell)


def render_mode_key(
    backend: str,
    tolerance: float | None,
    fp16: bool,
    shards: int,
    interleaved_rows: bool,
    cross_tile_overlap: bool,
) -> tuple:
    """The render-mode component of the content address.

    Everything that changes pixels or compute cycles; the temporal
    ``cache_policy`` is excluded on purpose (see module docstring).
    """
    return (backend, tolerance, fp16, shards, interleaved_rows, cross_tile_overlap)


def frame_content_key(
    spec: SceneSpec,
    camera: Camera,
    frame_clock: int,
    detail: float,
    mode: tuple,
    pose_quant: float,
) -> str:
    """SHA-256 content address of one frame (hex digest)."""
    h = hashlib.sha256()
    h.update(repr(spec).encode())
    intrinsics = (
        camera.width, camera.height,
        float(camera.fx), float(camera.fy),
        float(camera.cx), float(camera.cy),
    )
    h.update(repr(intrinsics).encode())
    if pose_quant > 0.0:
        h.update(repr(("cell", pose_cell(camera, pose_quant), float(pose_quant))).encode())
    else:
        h.update(b"exact")
        h.update(np.ascontiguousarray(camera.rotation).tobytes())
        h.update(np.ascontiguousarray(camera.translation).tobytes())
    h.update(repr((int(frame_clock), float(detail), mode)).encode())
    return h.hexdigest()


@dataclass
class CachedFrame:
    """One interned render product: the image plus everything a peer
    session needs to replay the frame's timing as its own.

    ``image`` is marked read-only at insert time — every viewer shares
    the same buffer.
    """

    key: str
    image: np.ndarray
    trace: np.ndarray
    tiles: np.ndarray
    compute_seconds: float
    n_visible: int
    n_instances: int
    extra_flops: float
    nbytes: int = 0

    def __post_init__(self) -> None:
        self.image.setflags(write=False)
        self.trace.setflags(write=False)
        self.tiles.setflags(write=False)
        if self.nbytes == 0:
            self.nbytes = int(
                self.image.nbytes + self.trace.nbytes + self.tiles.nbytes
            )


@dataclass
class _Entry:
    frame: CachedFrame
    hits: int = 0
    seq: int = 0

    def score(self) -> float:
        """GreedyDual-Size eviction score: popularity times render
        cost.  Cheap unpopular frames evict first."""
        return (1 + self.hits) * self.frame.compute_seconds


class CacheTier:
    """One tier of the content cache, chained to its parent.

    Tiers are dumb byte-bounded stores; lookup-chain walking and
    economics attribution live in :class:`SessionContentView` so each
    session's stats are attributed to the tick that incurred them.
    """

    def __init__(
        self, level: str, capacity_bytes: int, parent: "CacheTier | None" = None
    ) -> None:
        if level not in TIER_LEVELS:
            raise ValidationError(f"unknown tier level '{level}'")
        self.level = level
        self.capacity_bytes = capacity_bytes
        self.parent = parent
        self._entries: dict[str, _Entry] = {}
        self._bytes = 0
        self._seq = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def used_bytes(self) -> int:
        return self._bytes

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str) -> CachedFrame | None:
        entry = self._entries.get(key)
        if entry is None:
            return None
        entry.hits += 1
        self._seq += 1
        entry.seq = self._seq
        return entry.frame

    def put(self, frame: CachedFrame) -> None:
        """Insert ``frame``, evicting minimum-score entries to fit.

        A frame larger than the whole tier is not stored (it would
        evict everything and then itself); a re-inserted key only
        refreshes recency.
        """
        if frame.nbytes > self.capacity_bytes:
            return
        existing = self._entries.get(key := frame.key)
        self._seq += 1
        if existing is not None:
            existing.seq = self._seq
            return
        self._entries[key] = _Entry(frame=frame, seq=self._seq)
        self._bytes += frame.nbytes
        while self._bytes > self.capacity_bytes and len(self._entries) > 1:
            victim_key = min(
                (k for k in self._entries if k != key),
                key=lambda k: (self._entries[k].score(), self._entries[k].seq),
            )
            self._bytes -= self._entries.pop(victim_key).frame.nbytes
            self.evictions += 1

    def clear(self) -> None:
        self._entries.clear()
        self._bytes = 0
        self._seq = 0
        self.evictions = 0


def make_tier_chain(
    config: ContentCacheConfig,
    levels: tuple[str, ...] = TIER_LEVELS,
    parent: CacheTier | None = None,
) -> CacheTier:
    """Build a chain of tiers (innermost returned), outermost attached
    to ``parent``.  Callers that own only part of the hierarchy (a
    worker owns session+worker; a server owns node; a fleet owns fleet)
    build their segment and point it at the segment above.
    """
    tier = parent
    for level in reversed(levels):
        tier = CacheTier(level, config.tier_bytes(level), parent=tier)
    assert tier is not None
    return tier


class SessionContentView:
    """One session's window onto the tier chain.

    Owns the innermost (session) tier, walks the chain on lookup,
    fills hits down, write-through inserts on miss, and attributes
    per-tier economics to *this* session so the serving layers can
    drain them per tick.
    """

    def __init__(self, config: ContentCacheConfig, session_tier: CacheTier) -> None:
        self.config = config
        self.tier = session_tier
        self._stats: dict[str, dict[str, float]] = {}
        #: Tiers that missed on the most recent total-miss lookup;
        #: their miss/total bytes are attributed when the rendered
        #: frame arrives via :meth:`insert` (its size is unknown until
        #: then).
        self._pending_miss: list[CacheTier] = []

    def canonical_camera(self, camera: Camera) -> Camera:
        return canonical_camera(camera, self.config.pose_quant)

    def frame_key(
        self,
        spec: SceneSpec,
        camera: Camera,
        frame_clock: int,
        detail: float,
        mode: tuple,
    ) -> str:
        return frame_content_key(
            spec, camera, frame_clock, detail, mode, self.config.pose_quant
        )

    def _level_stats(self, level: str) -> dict[str, float]:
        return self._stats.setdefault(
            level,
            {"accesses": 0, "hits": 0, "misses": 0, "miss_bytes": 0.0, "total_bytes": 0.0},
        )

    def lookup(self, key: str) -> tuple[CachedFrame, str] | None:
        """Walk the chain for ``key``; fill a hit down; track stats.

        Returns ``(frame, level)`` on a hit, ``None`` on a total miss
        (byte attribution for the missed tiers is deferred to
        :meth:`insert`).
        """
        self._pending_miss = []
        missed: list[CacheTier] = []
        tier: CacheTier | None = self.tier
        while tier is not None:
            frame = tier.get(key)
            stats = self._level_stats(tier.level)
            stats["accesses"] += 1
            if frame is not None:
                stats["hits"] += 1
                stats["total_bytes"] += frame.nbytes
                for lower in missed:
                    s = self._level_stats(lower.level)
                    s["misses"] += 1
                    s["miss_bytes"] += frame.nbytes
                    s["total_bytes"] += frame.nbytes
                    lower.put(frame)
                return frame, tier.level
            missed.append(tier)
            tier = tier.parent
        self._pending_miss = missed
        return None

    def insert(self, frame: CachedFrame) -> None:
        """Write-through insert after a miss rendered ``frame``.

        Also settles the byte attribution the preceding :meth:`lookup`
        left pending (the frame's size was unknown at lookup time).
        """
        for tier in self._pending_miss:
            stats = self._level_stats(tier.level)
            stats["misses"] += 1
            stats["miss_bytes"] += frame.nbytes
            stats["total_bytes"] += frame.nbytes
        self._pending_miss = []
        tier: CacheTier | None = self.tier
        while tier is not None:
            tier.put(frame)
            tier = tier.parent

    def drain(self) -> dict[str, CacheEconomics]:
        """This session's per-tier economics since the last drain."""
        out = {
            level: CacheEconomics(
                accesses=int(s["accesses"]),
                hits=int(s["hits"]),
                misses=int(s["misses"]),
                miss_bytes=s["miss_bytes"],
                total_bytes=s["total_bytes"],
            )
            for level, s in self._stats.items()
            if s["accesses"]
        }
        self._stats = {}
        return out


def merge_economics(
    into: dict[str, CacheEconomics], delta: dict[str, CacheEconomics]
) -> dict[str, CacheEconomics]:
    """Fold ``delta`` into ``into`` (in place; returned for chaining)."""
    for level, econ in delta.items():
        into[level] = into.get(level, CacheEconomics()) + econ
    return into


def economics_to_dict(economics: dict[str, CacheEconomics]) -> dict[str, dict]:
    """JSON-safe view of a per-tier economics mapping, in tier order."""
    return {
        level: economics[level].to_dict()
        for level in TIER_LEVELS
        if level in economics
    }


@dataclass
class BundleIntern:
    """Shared immutable scene-bundle interning across workers.

    Scene bundles are deterministic functions of ``(scene, detail)``
    and never mutated after build, so co-located workers can share one
    object instead of each building (and holding) its own copy.  Used
    as the ``builder`` of each worker's
    :class:`~repro.scenes.catalog.BundleCache` in local/fleet mode;
    subprocess workers cannot share memory and keep the default
    builder.
    """

    _bundles: dict[tuple[str, float], SceneBundle] = field(default_factory=dict)
    hits: int = 0
    misses: int = 0

    def build(self, scene: SceneSpec | str, detail: float = 1.0) -> SceneBundle:
        name = scene if isinstance(scene, str) else scene.name
        key = (name, float(detail))
        bundle = self._bundles.get(key)
        if bundle is not None:
            self.hits += 1
            return bundle
        self.misses += 1
        bundle = build_scene(scene, detail=detail)
        self._bundles[key] = bundle
        return bundle

    def clear(self) -> None:
        self._bundles.clear()
        self.hits = 0
        self.misses = 0
