"""Shared serving reports: summaries, tick results, cache economics.

Both frame pipelines (the exact image pipeline of
:mod:`repro.stream.pipeline` and the digest pipeline of
:mod:`repro.stream.digest`) and both serving layers
(:class:`~repro.stream.server.StreamServer` and
:class:`~repro.stream.fleet.EdgeFleet`) emit results through the
dataclasses in this module, so fleet-level numbers compose from
node-level numbers by construction instead of by parallel bookkeeping:

* :class:`SessionResult` — one session's streamed report plus its
  final placement;
* :class:`ServeSummary` — the serve-level aggregate, with
  :meth:`ServeSummary.merge` folding node summaries into a fleet
  summary in the same vocabulary;
* :class:`TickResult` — one worker's answer to a dispatched tick,
  with :meth:`TickResult.merged` composing per-batch results and
  threading per-tier :class:`~repro.core.reuse_cache.CacheEconomics`
  through :func:`~repro.stream.content_cache.merge_economics`.

Extracted from ``server.py``/``fleet.py`` (which re-export them for
compatibility) so the exact and digest pipelines report through a
single path.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.core.reuse_cache import CacheEconomics
from repro.stream.checkpoint import SessionCheckpoint
from repro.stream.content_cache import merge_economics
from repro.stream.pipeline import FrameRecord, StreamReport

__all__ = [
    "ConnectionStats",
    "ServeSummary",
    "SessionResult",
    "TickResult",
    "frame_evidence",
    "report_evidence",
]


@dataclass
class SessionResult:
    """What one session streamed: its report plus placement info."""

    session_id: str
    scene: str
    worker: int
    report: StreamReport

    @property
    def frames(self) -> list[FrameRecord]:
        return self.report.frames


@dataclass
class ServeSummary:
    """Aggregate serving metrics over one serve call.

    Two throughput views are reported:

    * ``sim_frames_per_sec`` — *simulated serving throughput*: every
      worker is one simulated GBU+GPU unit, its busy time is the sum
      of its frames' paper-scale latencies, and the makespan is the
      busiest worker.  This is the deployment-scaling metric (how much
      frame rate N workers serve), consistent with how every other
      number in this repository is extrapolated.
    * ``wall_frames_per_sec`` — host wall-clock throughput of the
      simulation itself; scales with physical cores, not with the
      modeled hardware.

    ``recoveries`` and ``migrations`` count worker respawns and
    checkpoint-replay session moves during the serve.
    """

    workers: int
    sessions: int
    total_frames: int
    sim_makespan_seconds: float
    #: Host wall-clock of the serve.  Excluded from equality: two
    #: serves that produced identical simulated output ARE equal, and
    #: golden/merge comparisons must not flake on host load
    #: (``perf_counter`` timings differ on every run).
    wall_seconds: float = field(compare=False)
    recoveries: int = 0
    migrations: int = 0

    @property
    def sim_frames_per_sec(self) -> float:
        if self.sim_makespan_seconds <= 0:
            return 0.0
        return self.total_frames / self.sim_makespan_seconds

    @property
    def wall_frames_per_sec(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.total_frames / self.wall_seconds

    @staticmethod
    def merge(summaries: list["ServeSummary"]) -> "ServeSummary":
        """Compose node-level summaries into one fleet-level summary.

        Worker and session counts add; frames add; the makespan is the
        busiest *node* (nodes serve concurrently, exactly like workers
        within a node); wall seconds take the max for the same reason.
        Used by :mod:`repro.stream.fleet` to report a fleet serve in
        the same vocabulary as a single server.
        """
        if not summaries:
            return ServeSummary(
                workers=0,
                sessions=0,
                total_frames=0,
                sim_makespan_seconds=0.0,
                wall_seconds=0.0,
            )
        return ServeSummary(
            workers=sum(s.workers for s in summaries),
            sessions=sum(s.sessions for s in summaries),
            total_frames=sum(s.total_frames for s in summaries),
            sim_makespan_seconds=max(s.sim_makespan_seconds for s in summaries),
            wall_seconds=max(s.wall_seconds for s in summaries),
            recoveries=sum(s.recoveries for s in summaries),
            migrations=sum(s.migrations for s in summaries),
        )

    @staticmethod
    def from_results(
        results: list[SessionResult],
        workers: int,
        wall_seconds: float,
        recoveries: int = 0,
        migrations: int = 0,
        busy_seconds: dict[int, float] | None = None,
    ) -> "ServeSummary":
        """Aggregate results; ``busy_seconds`` is the scheduler's exact
        per-worker busy accounting (frames attributed to the worker
        that *rendered* them, which matters once a session migrated
        mid-stream — the fallback attributes by final placement)."""
        total = sum(r.report.n_frames for r in results)
        if busy_seconds is None:
            busy_seconds = {}
            for r in results:
                busy_seconds[r.worker] = busy_seconds.get(r.worker, 0.0) + float(
                    sum(f.sim_seconds for f in r.frames)
                )
        makespan = max(busy_seconds.values(), default=0.0)
        return ServeSummary(
            workers=max(workers, 1),
            sessions=len(results),
            total_frames=total,
            sim_makespan_seconds=makespan,
            wall_seconds=wall_seconds,
            recoveries=recoveries,
            migrations=migrations,
        )


@dataclass
class TickResult:
    """One worker's answer to a dispatched tick batch.

    ``frames`` holds the rendered (session, record) pairs;
    ``done`` names sessions whose frame budget is now exhausted (the
    scheduler drops them from future ticks); ``checkpoints`` snapshots
    every session that rendered, enabling crash recovery and
    migration; ``content`` carries the tick's per-tier
    content-cache economics (empty without a content cache).
    """

    frames: list[tuple[str, FrameRecord]] = field(default_factory=list)
    done: list[str] = field(default_factory=list)
    checkpoints: dict[str, SessionCheckpoint] = field(default_factory=dict)
    content: dict[str, CacheEconomics] = field(default_factory=dict)

    @property
    def n_frames(self) -> int:
        return len(self.frames)

    @property
    def sim_seconds(self) -> float:
        """Summed paper-scale latency of this tick's frames.

        One worker's batches render serially, so this is the simulated
        busy time the tick added — the composable unit the fleet's
        clock advances on.
        """
        return float(sum(record.sim_seconds for _, record in self.frames))

    @staticmethod
    def merged(results: list["TickResult"]) -> "TickResult":
        """Fold the per-batch results of one tick into a single view."""
        out = TickResult()
        for result in results:
            out.frames.extend(result.frames)
            out.done.extend(result.done)
            out.checkpoints.update(result.checkpoints)
            merge_economics(out.content, result.content)
        return out


@dataclass
class ConnectionStats:
    """Wire-side accounting for one gateway connection.

    One physical connection serves at most one session; a session that
    reconnects appears as *several* connections sharing a
    ``session_id`` (``resumed`` marks the later ones).  ``queue_peak``
    vs. the gateway's configured bound is the backpressure audit:
    the send queue must never exceed the bound, and ``pauses`` counts
    how often dispatch was paused to enforce that.
    """

    peer: str
    session_id: str | None = None
    frames_sent: int = 0
    messages_sent: int = 0
    bytes_sent: int = 0
    #: Deepest the bounded send queue ever got (<= the bound, always).
    queue_peak: int = 0
    #: Full-queue pause transitions backpressure applied (each one
    #: froze dispatch for this session until the client caught up).
    pauses: int = 0
    #: This connection resumed a detached session's checkpoint.
    resumed: bool = False
    #: The client said ``bye`` or streamed to completion (vs.
    #: vanishing mid-stream).
    clean_close: bool = False
    #: Server-side checkpoint-restore latency for resumed connections
    #: (wall telemetry; never feeds simulated physics).
    restore_seconds: float = 0.0


def frame_evidence(record: FrameRecord, image_hash: bool = True) -> dict:
    """Deterministic, wall-clock-free view of one rendered frame.

    The gateway's per-frame wire message and the byte-identity tests
    both read frames through this projection, so "what the client saw"
    is exactly "what the simulation produced" minus host timing —
    ``wall_seconds`` and anything else ``perf_counter``-derived never
    reaches a comparison that must hold across runs.
    """
    out: dict = {
        "frame": int(record.frame),
        "detail": float(record.detail),
        "sim_seconds": float(record.sim_seconds),
        "sim_fps": float(record.sim_fps),
        "n_visible": int(record.n_visible),
        "n_instances": int(record.n_instances),
        "shards": int(record.shards),
        "served_from": record.served_from,
        "hit_rate": float(record.hit_rate),
        "cumulative_hit_rate": float(record.cache.cumulative_hit_rate),
    }
    if record.qos is None:
        out["deadline"] = None
    else:
        out["deadline"] = {
            "met": bool(record.qos.met),
            "margin_seconds": float(record.qos.margin_seconds),
        }
    if image_hash and record.image is not None:
        out["image_sha256"] = hashlib.sha256(
            record.image.tobytes()
        ).hexdigest()
    return out


def report_evidence(report: StreamReport) -> dict:
    """Deterministic, wall-clock-free summary of one streamed session.

    Shipped in the gateway's ``end`` message and compared in the
    reconnect chaos tests: equal evidence means equal images (hashes),
    detail traces, and cache counters — the replay invariant.
    """
    return {
        "scene": report.scene,
        "trajectory": report.trajectory,
        "n_frames": int(report.n_frames),
        "mean_detail": float(report.mean_detail),
        "detail_trace": [float(d) for d in report.detail_trace],
        "deadline_miss_rate": float(report.deadline_miss_rate()),
        "warm_hit_rate": float(report.warm_hit_rate),
        "frames": [frame_evidence(f) for f in report.frames],
    }
