"""Load-aware, fault-tolerant session scheduling for the stream server.

PR 2's server spread sessions over workers blindly (arrival order
modulo pool size) and kept dispatching every session id every tick.
This module owns those decisions instead:

* **Placement** — where a session runs.  ``rr`` keeps the arrival-order
  round-robin; ``load`` places each admitted session on the worker with
  the least *estimated remaining cost*, where a session costs
  ``frame budget x per-frame latency``.  The per-frame latency starts
  from a static catalog proxy (:func:`static_frame_estimate`) and is
  replaced by *measured* paper-scale latency as frames are observed.
  Estimates are keyed ``(scene, detail)`` — adaptive (QoS) sessions
  render the same scene at several details, and one scene/one number
  would let a low-detail observation poison the placement of a
  full-detail session.  A detail without its own observation falls
  back to the nearest observed detail of the same scene (proxy-ratio
  rescaled); unobserved scenes are calibrated against the observed
  ones so the two unit systems never mix.
* **Admission control** — ``max_inflight`` bounds how many sessions are
  served concurrently; the rest queue and are admitted as sessions
  finish (backpressure instead of oversubscribing the pool).
* **Rebalancing** — when the spread of per-worker remaining cost
  exceeds ``rebalance_threshold`` (relative to the mean), the
  load-aware policy proposes a :class:`Migration` of one session from
  the most- to the least-loaded worker.  The server executes it by
  replaying the session's checkpoint on the target worker
  (``repro.stream.checkpoint``), so migration never changes a
  session's output.
* **Completion tracking** — workers report budget-exhausted sessions;
  :meth:`StreamScheduler.mark_done` drops them from future ticks (no
  more pay-per-tick IPC for finished streams) and admits queued ones.

The scheduler is deterministic: identical sessions and observations
produce identical placements, admissions, and migrations.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.errors import ValidationError
from repro.scenes.catalog import CATALOG

# The '"StreamSession"' annotations below refer to repro.stream.server,
# which imports this module — a type-only forward reference keeps the
# import acyclic (sessions are duck-typed here: session_id, scene,
# detail, frame_budget).

#: Placement policies accepted by the server and CLI.
PLACEMENTS = ("rr", "load")


def static_frame_estimate(scene: str, detail: float = 1.0) -> float:
    """Relative per-frame cost proxy for a scene, before any frame ran.

    The product of the catalog's sim-to-paper workload scale and the
    detail-scaled Gaussian count tracks how Step-1/Step-3 work grows
    across scenes.  Only the *relative* ordering matters: as soon as a
    scene's first frame is rendered, its measured ``sim_seconds``
    replaces this proxy.
    """
    spec = CATALOG[scene]
    return spec.workload_scale * spec.n_gaussians * max(detail, 1e-6)


@dataclass(frozen=True)
class Migration:
    """Move one session from worker ``src`` to worker ``dst``."""

    session_id: str
    src: int
    dst: int


@dataclass
class _SessionPlan:
    """Mutable scheduling state of one session.

    ``current_detail`` tracks the detail the session actually renders
    at — it starts at the descriptor's nominal detail and follows the
    QoS controller's rung as frames are observed, so cost estimates
    for adaptive sessions stay honest.
    """

    session: "StreamSession"
    worker: int = -1  # -1: queued, not yet admitted
    frames_done: int = 0
    done: bool = False
    current_detail: float = 0.0

    def __post_init__(self) -> None:
        self.current_detail = float(self.session.detail)

    @property
    def admitted(self) -> bool:
        return self.worker >= 0

    @property
    def active(self) -> bool:
        return self.admitted and not self.done

    @property
    def frames_left(self) -> int:
        return max(self.session.frame_budget - self.frames_done, 0)


class StreamScheduler:
    """Base scheduler: admission control + tick planning.

    Subclasses decide *where* a session goes (:meth:`_place`) and
    whether to rebalance; everything else — the admission queue, cost
    model, completion bookkeeping — is shared.
    """

    def __init__(
        self,
        sessions: list["StreamSession"],
        workers: int,
        max_inflight: int | None = None,
        estimator: Callable[[str, float], float] = static_frame_estimate,
    ) -> None:
        if max_inflight is not None and max_inflight < 1:
            raise ValidationError("max_inflight must be at least 1 when set")
        self.workers = max(workers, 1)
        self.max_inflight = max_inflight
        self._estimator = estimator
        self._plans = {s.session_id: _SessionPlan(s) for s in sessions}
        #: Arrival-ordered subsequence of ``_plans`` that still has
        #: work (queued or active).  Tick planning and cost accounting
        #: iterate this instead of every plan ever registered, keeping
        #: steady-state tick cost proportional to *live* sessions — at
        #: 10^5+ arrivals over a serve, scanning finished plans each
        #: tick dominates everything else.  Removal never reorders, so
        #: iteration order (and therefore float accumulation order)
        #: matches the historical full scan exactly.
        self._undone = dict(self._plans)
        #: Live count of admitted, unfinished sessions (``inflight``
        #: without an O(sessions) scan on every admission check).
        self._active_count = 0
        self._proxy: dict[tuple[str, float], float] = {}
        for s in sessions:
            self._proxy_for(s.scene, s.detail)
        self._observed: dict[tuple[str, float], float] = {}
        self.busy_seconds = {w: 0.0 for w in range(self.workers)}
        self.migrations: list[Migration] = []
        #: Memoized :meth:`remaining_cost`; ``None`` when any state it
        #: depends on changed since the last computation.
        self._cost_cache: dict[int, float] | None = None
        #: Sessions excluded from tick dispatch (gateway backpressure).
        #: A paused session keeps its worker, its admission slot, and
        #: its crash-recovery registration — it simply renders no new
        #: frames until resumed, so a slow client stalls *its own*
        #: stream instead of growing an unbounded send queue.
        self._paused: set[str] = set()
        self._queue: deque[str] = deque(self._admission_order(sessions))
        self.admit()

    # -- admission ------------------------------------------------------
    def _admission_order(self, sessions: list["StreamSession"]) -> list[str]:
        """Queue order for admission; base policy is FIFO (arrival)."""
        return [s.session_id for s in sessions]

    # -- dynamic session population ------------------------------------
    def add_session(self, session: "StreamSession") -> bool:
        """Register a session that arrived after construction.

        Open-loop serving (the fleet's generated traffic) submits
        sessions while a serve is already running; they join the
        admission queue and are placed the moment capacity allows.
        Returns whether the session was admitted immediately.
        """
        if session.session_id in self._plans:
            raise ValidationError(
                f"session '{session.session_id}' is already scheduled"
            )
        plan = _SessionPlan(session)
        self._plans[session.session_id] = plan
        self._undone[session.session_id] = plan
        self._proxy_for(session.scene, session.detail)
        self._queue.append(session.session_id)
        return session.session_id in self.admit()

    def attach_session(
        self,
        session: "StreamSession",
        frames_done: int = 0,
        worker: int | None = None,
    ) -> int:
        """Admit a (possibly mid-stream) session immediately.

        Used for checkpoint-replay *injection*: a session migrating in
        from another node arrives with ``frames_done`` frames already
        rendered elsewhere and must start ticking now, bypassing the
        admission queue (its source node already admitted it — a fleet
        migration must never park a running client behind
        backpressure).  ``worker`` forces placement; ``None`` asks the
        policy.  Returns the worker the session landed on.
        """
        if session.session_id in self._plans:
            raise ValidationError(
                f"session '{session.session_id}' is already scheduled"
            )
        if frames_done < 0:
            raise ValidationError("frames_done cannot be negative")
        plan = _SessionPlan(session)
        plan.frames_done = int(frames_done)
        self._proxy_for(session.scene, session.detail)
        plan.worker = self._place(session) if worker is None else worker
        if not 0 <= plan.worker < self.workers:
            raise ValidationError(
                f"worker {plan.worker} is outside the pool of {self.workers}"
            )
        plan.done = plan.frames_left == 0
        self._plans[session.session_id] = plan
        if not plan.done:
            self._undone[session.session_id] = plan
            self._active_count += 1
        self._cost_cache = None
        return plan.worker

    def remove_session(self, session_id: str) -> "StreamSession":
        """Forget a session (migration source side).

        Busy-seconds already attributed to this scheduler's workers
        stay — frames rendered here were rendered here.  A session
        still waiting in the admission queue is simply dequeued.
        """
        plan = self._plans.pop(session_id, None)
        if plan is None:
            raise ValidationError(f"unknown session '{session_id}'")
        self._undone.pop(session_id, None)
        self._paused.discard(session_id)
        self._cost_cache = None
        if session_id in self._queue:
            self._queue.remove(session_id)
        else:
            # An admitted session left; its capacity slot frees up.
            if plan.active:
                self._active_count -= 1
            self.admit()
        return plan.session

    def frames_done(self, session_id: str) -> int:
        return self._plans[session_id].frames_done

    @property
    def inflight(self) -> int:
        return self._active_count

    @property
    def queued(self) -> list[str]:
        """Session ids waiting for admission (backpressure queue)."""
        return list(self._queue)

    def admit(self) -> list[str]:
        """Admit queued sessions while the pool has capacity."""
        admitted = []
        while self._queue and (
            self.max_inflight is None or self._active_count < self.max_inflight
        ):
            session_id = self._queue.popleft()
            plan = self._plans[session_id]
            plan.worker = self._place(plan.session)
            self._active_count += 1
            self._cost_cache = None
            admitted.append(session_id)
        return admitted

    def _place(self, session: "StreamSession") -> int:
        raise NotImplementedError

    # -- cost model -----------------------------------------------------
    @staticmethod
    def _detail_key(detail: float) -> float:
        """Estimate-table key for a detail value (float-noise safe)."""
        return round(float(detail), 6)

    def _proxy_for(self, scene: str, detail: float) -> float:
        """The static cost proxy for ``(scene, detail)`` (memoized)."""
        key = (scene, self._detail_key(detail))
        if key not in self._proxy:
            self._proxy[key] = self._estimator(scene, detail)
        return self._proxy[key]

    def frame_estimate(
        self, session: "StreamSession", detail: float | None = None
    ) -> float:
        """Best current estimate of one frame's paper-scale seconds.

        Estimates are keyed ``(scene, detail)``: a scene rendered at
        two details is two different workloads, and adaptive (QoS)
        sessions change detail mid-stream.  ``detail`` defaults to the
        session's *current* detail (the last observed rung).  Lookup
        order:

        1. an observation at exactly ``(scene, detail)``;
        2. the nearest observed detail of the same scene, rescaled by
           the static proxy ratio between the two details;
        3. the static proxy, unit-calibrated against whatever other
           scenes have been observed.
        """
        if detail is None:
            plan = self._plans.get(session.session_id)
            detail = (
                plan.current_detail if plan is not None else session.detail
            )
        key = (session.scene, self._detail_key(detail))
        if key in self._observed:
            return self._observed[key]
        proxy = self._proxy_for(session.scene, detail)
        same_scene = [
            (abs(d - key[1]), d)
            for (scene, d) in self._observed
            if scene == session.scene
        ]
        if same_scene:
            nearest = min(same_scene)[1]
            observed = self._observed[(session.scene, nearest)]
            near_proxy = self._proxy_for(session.scene, nearest)
            return observed * proxy / near_proxy if near_proxy > 0 else observed
        if not self._observed:
            return proxy
        # Calibrate proxy units against scenes we have measured, so an
        # unobserved scene competes in (approximate) real seconds.
        ratios = [
            self._observed[k] / self._proxy[k]
            for k in self._observed
            if self._proxy.get(k)
        ]
        return proxy * (sum(ratios) / len(ratios)) if ratios else proxy

    def remaining_cost(self) -> dict[int, float]:
        """Estimated outstanding seconds of work per worker.

        Memoized until any input changes (admission, observation,
        completion, migration): fleet routing queries every node's
        cost for every arrival, and only the node that actually
        changed needs a recompute.  The recompute memoizes
        ``frame_estimate`` per ``(scene, detail)`` — the estimate is a
        pure function of that key between observations, so thousands
        of same-workload sessions collapse to one lookup without
        changing a single accumulated float.
        """
        if self._cost_cache is None:
            cost = {w: 0.0 for w in range(self.workers)}
            estimates: dict[tuple[str, float], float] = {}
            for plan in self._undone.values():
                if not plan.active:
                    continue
                key = (plan.session.scene, self._detail_key(plan.current_detail))
                estimate = estimates.get(key)
                if estimate is None:
                    estimate = estimates[key] = self.frame_estimate(plan.session)
                cost[plan.worker] += plan.frames_left * estimate
            self._cost_cache = cost
        return dict(self._cost_cache)

    # -- observation / completion --------------------------------------
    def observe_frame(
        self, session_id: str, sim_seconds: float, detail: float | None = None
    ) -> None:
        """Account one rendered frame (updates costs and estimates).

        ``detail`` is the detail the frame actually rendered at; the
        server forwards it from the frame record so adaptive sessions
        re-key their estimates as the QoS controller moves, instead of
        poisoning the nominal-detail entry with off-rung latencies.
        """
        plan = self._plans[session_id]
        plan.frames_done += 1
        self.busy_seconds[plan.worker] += float(sim_seconds)
        self._cost_cache = None
        if detail is None:
            detail = plan.current_detail
        else:
            plan.current_detail = float(detail)
        self._proxy_for(plan.session.scene, detail)
        self._observed.setdefault(
            (plan.session.scene, self._detail_key(detail)), float(sim_seconds)
        )

    def mark_done(self, session_id: str) -> list[str]:
        """Drop a finished session from future ticks; admit queued ones."""
        plan = self._plans[session_id]
        if plan.active:
            self._active_count -= 1
        plan.done = True
        self._undone.pop(session_id, None)
        self._paused.discard(session_id)
        self._cost_cache = None
        return self.admit()

    # -- pause / resume (gateway backpressure) --------------------------
    def pause_session(self, session_id: str) -> None:
        """Stop dispatching ``session_id`` until :meth:`resume_session`.

        The session keeps its worker and admission slot (pausing is a
        flow-control signal, not an eviction), so resuming continues
        the stream exactly where it stopped.  Pausing an already-paused
        or queued session is a no-op.
        """
        if session_id not in self._plans:
            raise ValidationError(f"unknown session '{session_id}'")
        self._paused.add(session_id)

    def resume_session(self, session_id: str) -> None:
        """Re-enable tick dispatch for a paused session (idempotent)."""
        if session_id not in self._plans:
            raise ValidationError(f"unknown session '{session_id}'")
        self._paused.discard(session_id)

    def is_paused(self, session_id: str) -> bool:
        return session_id in self._paused

    @property
    def paused(self) -> list[str]:
        """Session ids currently excluded from dispatch (sorted)."""
        return sorted(self._paused)

    # -- queries --------------------------------------------------------
    def session(self, session_id: str) -> "StreamSession":
        return self._plans[session_id].session

    def worker_of(self, session_id: str) -> int:
        return self._plans[session_id].worker

    def is_done(self, session_id: str) -> bool:
        return self._plans[session_id].done

    def active_on(self, worker: int) -> list["StreamSession"]:
        """Admitted, unfinished sessions placed on ``worker``."""
        return [
            p.session
            for p in self._undone.values()
            if p.active and p.worker == worker
        ]

    def tick_assignments(self) -> dict[int, list["StreamSession"]]:
        """Per worker, the sessions to dispatch this tick (none when
        every session has drained)."""
        out: dict[int, list["StreamSession"]] = {}
        for plan in self._undone.values():
            if plan.active and plan.session.session_id not in self._paused:
                out.setdefault(plan.worker, []).append(plan.session)
        return out

    # -- rebalancing ----------------------------------------------------
    def rebalance(self) -> list[Migration]:
        """Propose migrations (base policy: placement is final)."""
        return []


class RoundRobinScheduler(StreamScheduler):
    """PR 2's arrival-order placement, now with completion tracking."""

    def __init__(self, *args, **kwargs) -> None:
        self._next = 0
        super().__init__(*args, **kwargs)

    def _place(self, session: "StreamSession") -> int:
        worker = self._next % self.workers
        self._next += 1
        return worker


class LoadAwareScheduler(StreamScheduler):
    """Cost-based placement with skew-triggered rebalancing.

    Admission order is estimated-cost-descending (longest processing
    time first — the classic makespan heuristic); each admitted session
    lands on the worker with the least estimated remaining cost.
    """

    def __init__(
        self,
        sessions: list["StreamSession"],
        workers: int,
        max_inflight: int | None = None,
        estimator: Callable[[str, float], float] = static_frame_estimate,
        rebalance_threshold: float = 0.25,
    ) -> None:
        if rebalance_threshold <= 0:
            raise ValidationError("rebalance threshold must be positive")
        self.rebalance_threshold = rebalance_threshold
        super().__init__(
            sessions, workers, max_inflight=max_inflight, estimator=estimator
        )

    def _admission_order(self, sessions: list["StreamSession"]) -> list[str]:
        order = sorted(
            range(len(sessions)),
            key=lambda i: (
                -sessions[i].frame_budget
                * self._proxy_for(sessions[i].scene, sessions[i].detail),
                i,
            ),
        )
        return [sessions[i].session_id for i in order]

    def _place(self, session: "StreamSession") -> int:
        cost = self.remaining_cost()
        return min(range(self.workers), key=lambda w: (cost[w], w))

    def rebalance(self) -> list[Migration]:
        """One migration from the most- to the least-loaded worker.

        Triggered when the relative spread of remaining cost exceeds
        the threshold; the moved session is the largest one that still
        fits in the gap (strictly improving the imbalance).  One
        migration per tick keeps the schedule easy to audit; persistent
        skew drains over consecutive ticks.
        """
        if self.workers < 2:
            return []
        cost = self.remaining_cost()
        total = sum(cost.values())
        if total <= 0:
            return []
        mean = total / self.workers
        src = max(cost, key=lambda w: (cost[w], -w))
        dst = min(cost, key=lambda w: (cost[w], w))
        gap = cost[src] - cost[dst]
        if gap / mean <= self.rebalance_threshold:
            return []
        best: tuple[float, str] | None = None
        for plan in self._undone.values():
            if not plan.active or plan.worker != src:
                continue
            move = plan.frames_left * self.frame_estimate(plan.session)
            if 0.0 < move < gap and (best is None or move > best[0]):
                best = (move, plan.session.session_id)
        if best is None:
            return []
        session_id = best[1]
        self._plans[session_id].worker = dst
        self._cost_cache = None
        migration = Migration(session_id=session_id, src=src, dst=dst)
        self.migrations.append(migration)
        return [migration]


SCHEDULERS = {"rr": RoundRobinScheduler, "load": LoadAwareScheduler}


def make_scheduler(
    placement: str,
    sessions: list["StreamSession"],
    workers: int,
    max_inflight: int | None = None,
    rebalance_threshold: float = 0.25,
    estimator: Callable[[str, float], float] = static_frame_estimate,
) -> StreamScheduler:
    """Build the scheduler for a ``serve`` call."""
    if placement not in SCHEDULERS:
        raise ValidationError(
            f"unknown placement policy '{placement}'; choose from "
            + ", ".join(PLACEMENTS)
        )
    if placement == "load":
        return LoadAwareScheduler(
            sessions,
            workers,
            max_inflight=max_inflight,
            estimator=estimator,
            rebalance_threshold=rebalance_threshold,
        )
    return RoundRobinScheduler(
        sessions, workers, max_inflight=max_inflight, estimator=estimator
    )
