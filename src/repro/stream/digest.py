"""The digest frame pipeline: model-driven session advancement.

The exact pipeline (:class:`~repro.stream.pipeline.FrameStream`)
renders every frame of every session, which caps fleet benchmarks at
tens of concurrent sessions.  This module is the other half of the
pipeline split: a :class:`DigestFrameStream` advances a session's
*observable serving state* — ``sim_seconds``, temporal-cache hit
rates, content-cache keys and economics, and the QoS detail trace —
from :class:`WorkloadModel` s calibrated against real renders, without
touching pixels.  That is what lets the scheduler, QoS controller,
router and autoscaler be driven at 10^5+ concurrent sessions
(``benchmarks/bench_digest_scale.py``).

Design rules, in order of priority:

* **Determinism.** A digest stream is a pure function of (scene,
  trajectory, detail, config, model table).  Per-frame jitter, when a
  model carries any, is counter-based (SHA-256 of the stream's
  identity and the frame index) — there is no RNG state to lose, so
  checkpoint restore at any frame continues byte-identically for
  free.
* **Checkpoint compatibility.** A digest stream duck-types the
  :class:`~repro.stream.pipeline.FramePipeline` surface that
  :mod:`repro.stream.checkpoint` captures: its cache state exports a
  real :class:`~repro.core.reuse_cache.TemporalCacheState`, so the
  same :class:`~repro.stream.checkpoint.SessionCheckpoint` machinery
  (and therefore crash recovery and cross-node migration) replays
  digest sessions byte-identically.
* **Fidelity.** Models are keyed per (scene, detail rung, trajectory
  class, render mode) and store *per-frame-index* sequences, so a
  digest trace agrees with the full render on small configs:
  identical content-cache key sequences (keys are computed from the
  real trajectory cameras through the same
  :func:`~repro.stream.content_cache.frame_content_key`), identical
  detail-ladder decisions away from deadline boundaries, and
  ``sim_seconds`` within :data:`SIM_SECONDS_REL_TOL` (exact when the
  calibration trajectory matches).  :func:`assert_trace_agreement`
  is the reusable checker; ``tests/stream/test_digest.py`` and the
  scale benchmark both go through it.

Known approximation: a mid-stream detail switch indexes the *new*
rung's model at the current absolute frame index, so the temporal
cache's post-flush warm-up dip is smoothed over (the cumulative
counters stay exact).  The QoS loop feeds back the modeled latencies
either way, so ladder decisions remain deterministic.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields, replace

import numpy as np

from repro.core.gbu import GBUConfig
from repro.core.reuse_cache import (
    CacheReport,
    FrameCacheSample,
    TemporalCacheState,
)
from repro.errors import ValidationError
from repro.render.approx import default_policy, tolerance_for_rung
from repro.scenes import SceneSpec
from repro.scenes.catalog import CATALOG, AppType
from repro.stream.binning import BinningStats, camera_fingerprint
from repro.stream.content_cache import (
    CachedFrame,
    SessionContentView,
    render_mode_key,
)
from repro.stream.pipeline import (
    FrameRecord,
    FrameStream,
    StreamReport,
    streaming_config,
)
from repro.stream.qos import QualityController
from repro.stream.trajectory import CameraTrajectory

#: Schema version of the serialized model table.
MODEL_VERSION = 1

#: Declared per-frame ``sim_seconds`` relative tolerance of the digest
#: pipeline against the full render, for trajectories of the same
#: class but different seeds/phases than the calibration run.  A
#: digest replay of the calibration trajectory itself is exact.
SIM_SECONDS_REL_TOL = 0.15


def _detail_key(detail: float) -> float:
    """Detail rungs quantized the way the QoS ladder quantizes them."""
    return round(float(detail), 6)


@dataclass(frozen=True)
class WorkloadModel:
    """Calibrated per-frame workload of one (scene, rung, class, mode).

    All sequences are indexed by absolute frame index; frames beyond
    the calibrated horizon reuse the last (steady-state warm) entry.
    Counters are what the exact pipeline's
    :class:`~repro.core.reuse_cache.FrameCacheSample` and
    :class:`~repro.stream.binning.BinningStats` would report.

    ``jitter`` (relative spread, 0 disables) decorrelates large
    session fleets without breaking determinism: the per-frame factor
    is derived from a SHA-256 counter keyed by the consuming stream's
    identity, never from a stateful RNG.
    """

    scene: str
    detail: float
    trajectory: str
    mode: tuple
    frame_seconds: tuple[float, ...]
    n_visible: tuple[int, ...]
    n_instances: tuple[int, ...]
    accesses: tuple[int, ...]
    hits: tuple[int, ...]
    carried_hits: tuple[int, ...]
    binning_reused: tuple[int, ...]
    full_reuse: tuple[bool, ...]
    frame_nbytes: tuple[int, ...]
    cache_policy: str
    capacity_lines: int
    bytes_per_line: int
    n_eval_frames: int = 8
    jitter: float = 0.0

    def __post_init__(self) -> None:
        n = len(self.frame_seconds)
        if n == 0:
            raise ValidationError(
                "a workload model needs at least one calibrated frame"
            )
        for name in (
            "n_visible",
            "n_instances",
            "accesses",
            "hits",
            "carried_hits",
            "binning_reused",
            "full_reuse",
            "frame_nbytes",
        ):
            if len(getattr(self, name)) != n:
                raise ValidationError(
                    f"workload model sequence '{name}' has "
                    f"{len(getattr(self, name))} entries, expected {n}"
                )
        if not 0.0 <= self.jitter < 1.0:
            raise ValidationError("model jitter must be in [0, 1)")

    @property
    def key(self) -> tuple:
        return (
            self.scene,
            _detail_key(self.detail),
            self.trajectory,
            self.mode,
        )

    @property
    def n_frames(self) -> int:
        return len(self.frame_seconds)

    def position(self, frame: int) -> int:
        """Sequence index for absolute frame ``frame`` (clamped warm)."""
        return min(int(frame), self.n_frames - 1)

    def to_dict(self) -> dict:
        """JSON-safe view; :meth:`from_dict` round-trips it exactly."""
        return {
            "scene": self.scene,
            "detail": self.detail,
            "trajectory": self.trajectory,
            "mode": list(self.mode),
            "frame_seconds": list(self.frame_seconds),
            "n_visible": list(self.n_visible),
            "n_instances": list(self.n_instances),
            "accesses": list(self.accesses),
            "hits": list(self.hits),
            "carried_hits": list(self.carried_hits),
            "binning_reused": list(self.binning_reused),
            "full_reuse": list(self.full_reuse),
            "frame_nbytes": list(self.frame_nbytes),
            "cache_policy": self.cache_policy,
            "capacity_lines": self.capacity_lines,
            "bytes_per_line": self.bytes_per_line,
            "n_eval_frames": self.n_eval_frames,
            "jitter": self.jitter,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "WorkloadModel":
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValidationError(
                f"unknown workload-model fields: {sorted(unknown)}"
            )
        data = dict(payload)
        data["mode"] = tuple(data["mode"])
        for name in (
            "frame_seconds",
            "n_visible",
            "n_instances",
            "accesses",
            "hits",
            "carried_hits",
            "binning_reused",
            "full_reuse",
            "frame_nbytes",
        ):
            data[name] = tuple(data[name])
        return cls(**data)


class WorkloadModelTable:
    """Registry of :class:`WorkloadModel` s with calibrated fallback.

    Lookup resolves, in order: the exact (scene, rung, class, mode)
    key; the nearest calibrated rung of the same (scene, class, mode)
    with counters and seconds scaled linearly in detail (the same
    proxy :func:`~repro.stream.scheduler.static_frame_estimate` uses);
    and finally the nearest rung of the same (scene, class) across
    render modes — QoS shard escalation changes the mode mid-stream,
    and a mode-mismatched model beats refusing to serve.  A scene or
    trajectory class that was never calibrated raises
    :class:`~repro.errors.ValidationError`.
    """

    def __init__(self, models: list[WorkloadModel] | None = None) -> None:
        self._models: dict[tuple, WorkloadModel] = {}
        self._resolved: dict[tuple, tuple[WorkloadModel, float]] = {}
        for model in models or []:
            self.register(model)

    def __len__(self) -> int:
        return len(self._models)

    @property
    def models(self) -> list[WorkloadModel]:
        return list(self._models.values())

    def register(self, model: WorkloadModel) -> None:
        self._models[model.key] = model
        self._resolved.clear()

    def lookup(
        self, scene: str, detail: float, trajectory: str, mode: tuple
    ) -> tuple[WorkloadModel, float]:
        """Resolve ``(model, scale)`` for a frame's workload.

        ``scale`` is the linear detail ratio to apply to the model's
        sequences (1.0 on an exact rung match).
        """
        key = (scene, _detail_key(detail), trajectory, mode)
        hit = self._resolved.get(key)
        if hit is not None:
            return hit
        model = self._models.get(key)
        if model is None:
            same_mode = [
                m
                for m in self._models.values()
                if m.scene == scene
                and m.trajectory == trajectory
                and m.mode == mode
            ]
            pool = same_mode or [
                m
                for m in self._models.values()
                if m.scene == scene and m.trajectory == trajectory
            ]
            if not pool:
                raise ValidationError(
                    f"no workload model calibrated for scene '{scene}', "
                    f"trajectory class '{trajectory}' — run calibration "
                    "(repro-stream calibrate) over this combination first"
                )
            model = min(pool, key=lambda m: (abs(m.detail - detail), m.detail))
        scale = (
            1.0
            if _detail_key(detail) == _detail_key(model.detail)
            else max(detail, 1e-6) / max(model.detail, 1e-6)
        )
        self._resolved[key] = (model, scale)
        return model, scale

    def with_jitter(self, jitter: float) -> "WorkloadModelTable":
        """A copy of the table with every model's jitter replaced."""
        return WorkloadModelTable(
            [replace(m, jitter=jitter) for m in self._models.values()]
        )

    # -- serialization --------------------------------------------------
    def to_json(self) -> str:
        payload = {
            "version": MODEL_VERSION,
            "models": [m.to_dict() for m in self._models.values()],
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "WorkloadModelTable":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValidationError(f"model table is not valid JSON: {exc}")
        if not isinstance(payload, dict) or "models" not in payload:
            raise ValidationError(
                "model table JSON must be an object with a 'models' list"
            )
        if payload.get("version") != MODEL_VERSION:
            raise ValidationError(
                f"model table version {payload.get('version')!r} is not "
                f"supported (expected {MODEL_VERSION})"
            )
        return cls([WorkloadModel.from_dict(m) for m in payload["models"]])

    # -- calibration ----------------------------------------------------
    @classmethod
    def calibrate(
        cls,
        scenes,
        details=(1.0,),
        trajectories=("orbit",),
        n_frames: int = 8,
        config: GBUConfig | None = None,
        seed: int = 0,
        jitter: float = 0.0,
    ) -> "WorkloadModelTable":
        """Calibrate models by running the exact pipeline.

        One full render of ``n_frames`` per (scene, detail, trajectory
        class) on small inputs; the recorded per-frame sequences are
        what the digest pipeline replays.  Deterministic: the
        calibration trajectory is seeded, and the exact pipeline is.
        """
        if n_frames < 1:
            raise ValidationError("calibration needs at least one frame")
        table = cls()
        for scene in scenes:
            spec = CATALOG[scene] if isinstance(scene, str) else scene
            for detail in details:
                for kind in trajectories:
                    table.register(
                        _calibrate_one(
                            spec, float(detail), kind, n_frames, config,
                            seed, jitter,
                        )
                    )
        return table


def _calibrate_one(
    spec: SceneSpec,
    detail: float,
    kind: str,
    n_frames: int,
    config: GBUConfig | None,
    seed: int,
    jitter: float,
) -> WorkloadModel:
    """Run one exact-render calibration and distill its model."""
    trajectory = CameraTrajectory.for_scene(
        spec, kind, n_frames=n_frames, seed=seed, detail=detail
    )
    stream = FrameStream(spec, trajectory, config=config, detail=detail)
    mode = stream._render_mode(1, detail)
    state = stream.cache_state
    records = [stream.render_next() for _ in range(n_frames)]
    width, height = spec.eval_resolution(detail)
    image_nbytes = height * width * 3 * 8  # float64 RGB frame buffer
    return WorkloadModel(
        scene=spec.name,
        detail=detail,
        trajectory=kind,
        mode=mode,
        frame_seconds=tuple(float(r.sim_seconds) for r in records),
        n_visible=tuple(int(r.n_visible) for r in records),
        n_instances=tuple(int(r.n_instances) for r in records),
        accesses=tuple(int(r.cache.report.accesses) for r in records),
        hits=tuple(int(r.cache.report.hits) for r in records),
        carried_hits=tuple(int(r.cache.carried_hits) for r in records),
        binning_reused=tuple(
            int(r.binning.reused_instances) for r in records
        ),
        full_reuse=tuple(bool(r.binning.full_reuse) for r in records),
        # CachedFrame payload: image + int64 trace + int64 tiles.
        frame_nbytes=tuple(
            int(image_nbytes + r.cache.report.accesses * 16) for r in records
        ),
        cache_policy=state.policy,
        capacity_lines=state.capacity_lines,
        bytes_per_line=state.bytes_per_line,
        n_eval_frames=stream.bundle.n_eval_frames,
        jitter=jitter,
    )


class _DigestCacheState:
    """Temporal-cache counters advanced from a model, not a trace.

    Exports/imports the *same*
    :class:`~repro.core.reuse_cache.TemporalCacheState` dataclass as
    the exact simulator, so :class:`~repro.stream.checkpoint.
    SessionCheckpoint` is pipeline-agnostic.  The resident set is
    digested to a line *count* (grown by per-frame misses, capped at
    capacity, dropped on flush); exported ids are the canonical
    ``0..n-1`` range.
    """

    def __init__(
        self, policy: str, capacity_lines: int, bytes_per_line: int
    ) -> None:
        self.policy = policy
        self.capacity_lines = int(capacity_lines)
        self.bytes_per_line = int(bytes_per_line)
        self._resident_lines = 0
        self._frames_observed = 0
        self._cum_accesses = 0
        self._cum_hits = 0
        self._resident_tuple: tuple[int, ...] = ()

    @property
    def frames_observed(self) -> int:
        return self._frames_observed

    def observe(
        self, accesses: int, hits: int, carried_hits: int
    ) -> FrameCacheSample:
        """Record one modeled frame; mirrors the exact simulator's
        sample arithmetic (cumulatives include the current frame)."""
        misses = accesses - hits
        report = CacheReport(
            accesses=accesses,
            hits=hits,
            misses=misses,
            capacity_lines=self.capacity_lines,
            bytes_per_line=self.bytes_per_line,
        )
        sample = FrameCacheSample(
            frame=self._frames_observed,
            report=report,
            carried_hits=min(carried_hits, hits),
            cumulative_accesses=self._cum_accesses + accesses,
            cumulative_hits=self._cum_hits + hits,
        )
        self._frames_observed += 1
        self._cum_accesses += accesses
        self._cum_hits += hits
        self._resident_lines = min(
            self.capacity_lines, self._resident_lines + max(misses, 0)
        )
        return sample

    def reset(self) -> None:
        self._resident_lines = 0
        self._frames_observed = 0
        self._cum_accesses = 0
        self._cum_hits = 0

    def flush_resident(self) -> None:
        self._resident_lines = 0

    def export_state(self) -> TemporalCacheState:
        # Exports run once per rendered frame (checkpointing), and the
        # resident set is always a prefix of the line-id range; rebuild
        # the tuple only when the occupancy actually moved.
        if len(self._resident_tuple) != self._resident_lines:
            self._resident_tuple = tuple(range(self._resident_lines))
        return TemporalCacheState(
            policy=self.policy,
            capacity_lines=self.capacity_lines,
            bytes_per_line=self.bytes_per_line,
            resident_ids=self._resident_tuple,
            frames_observed=self._frames_observed,
            cumulative_accesses=self._cum_accesses,
            cumulative_hits=self._cum_hits,
        )

    def import_state(self, state: TemporalCacheState) -> None:
        if state.policy != self.policy:
            raise ValidationError(
                f"cache state was exported under policy '{state.policy}', "
                f"this digest state runs '{self.policy}'"
            )
        if (
            state.capacity_lines != self.capacity_lines
            or state.bytes_per_line != self.bytes_per_line
        ):
            raise ValidationError(
                "cache state geometry mismatch: exported "
                f"{state.capacity_lines}x{state.bytes_per_line}B, digest "
                f"has {self.capacity_lines}x{self.bytes_per_line}B"
            )
        self._resident_lines = len(state.resident_ids)
        self._frames_observed = state.frames_observed
        self._cum_accesses = state.cumulative_accesses
        self._cum_hits = state.cumulative_hits


class DigestFrameStream:
    """Advance one session's serving state from calibrated models.

    Implements the :class:`~repro.stream.pipeline.FramePipeline`
    surface of :class:`~repro.stream.pipeline.FrameStream` — the
    server, checkpoints, QoS controller and content cache drive both
    interchangeably — but each frame costs a model lookup instead of
    a render, so fleets of 10^5+ sessions fit in one process.

    Content-cache integration is *real*, not modeled: when ``content``
    is given, the frame's camera (rescaled to the active rung under a
    controller, then pose-canonicalized) is addressed through the same
    :func:`~repro.stream.content_cache.frame_content_key`, so digest
    key sequences match exact ones by construction; misses insert a
    placeholder payload carrying the model's calibrated byte size, so
    tier economics and eviction pressure stay meaningful.

    ``keep_images`` is rejected — a digest has no pixels to keep.
    """

    def __init__(
        self,
        scene: SceneSpec | str,
        trajectory: CameraTrajectory,
        models: WorkloadModelTable,
        config: GBUConfig | None = None,
        detail: float = 1.0,
        keep_images: bool = False,
        controller: QualityController | None = None,
        content: SessionContentView | None = None,
    ) -> None:
        spec = CATALOG[scene] if isinstance(scene, str) else scene
        if keep_images:
            raise ValidationError(
                "the digest pipeline renders no images; "
                "keep_images requires pipeline='exact'"
            )
        if controller is not None and controller.nominal_detail != detail:
            raise ValidationError(
                f"controller nominal detail {controller.nominal_detail} "
                f"does not match the stream's detail {detail}"
            )
        self.spec = spec
        self.trajectory = trajectory
        self.detail = detail
        self.models = models
        self.config = streaming_config() if config is None else config
        self.keep_images = False
        self.controller = controller
        self.content = content
        #: Content-cache key sequence (one entry per frame when a
        #: content cache is attached) — the fidelity-assertion trace.
        self.key_trace: list = []
        # Fail fast (at session registration, not first tick) when the
        # table cannot serve this stream at all; also pins the cache
        # geometry the checkpoint state must round-trip through.
        base, _ = models.lookup(
            spec.name, detail, trajectory.kind, self._render_mode(1, detail)
        )
        self.cache_state = _DigestCacheState(
            base.cache_policy, base.capacity_lines, base.bytes_per_line
        )
        # Scene-clock modulus, recorded at calibration time so the
        # digest computes bundle-identical frame clocks (and therefore
        # content keys) without ever building a bundle.
        self._n_eval_frames = base.n_eval_frames
        self._jitter_salt = hashlib.sha256(
            repr(
                (
                    spec.name,
                    trajectory.kind,
                    camera_fingerprint(trajectory.camera_at(0)),
                    _detail_key(detail),
                )
            ).encode()
        ).digest()
        self._active_detail = detail
        self._next_frame = 0

    # -- FramePipeline surface ------------------------------------------
    @property
    def frames_rendered(self) -> int:
        return self._next_frame

    @property
    def active_detail(self) -> float:
        return self._active_detail

    @property
    def frame_key(self) -> tuple | None:
        """Digest stand-in for the warm binner's last frame key.

        Derived from the cursor (no hidden state to checkpoint): the
        restored stream reports the same key the uninterrupted one
        would.
        """
        if self._next_frame == 0:
            return None
        return ("digest", self._frame_clock(self._next_frame - 1))

    def load_detail(self, detail: float) -> None:
        """Switch the active rung (the digest has no bundle to swap)."""
        self._active_detail = float(detail)

    def reset(self) -> None:
        self._active_detail = self.detail
        if self.controller is not None:
            self.controller.reset()
        self.cache_state.reset()
        self.key_trace.clear()
        self._next_frame = 0

    def seek(self, frame: int) -> None:
        if frame < 0:
            raise ValidationError("cannot seek to a negative frame")
        self._next_frame = int(frame)

    def run(self, n_frames: int | None = None) -> StreamReport:
        n = self.trajectory.n_frames if n_frames is None else n_frames
        if n <= 0:
            raise ValidationError("stream needs at least one frame")
        report = StreamReport(
            scene=self.spec.name, trajectory=self.trajectory.kind
        )
        for _ in range(n):
            report.frames.append(self.render_next())
        return report

    def render_next(self) -> FrameRecord:
        """Advance one frame from the model (same contract as the
        exact :meth:`~repro.stream.pipeline.FrameStream.render_next`,
        minus the image)."""
        k = self._next_frame
        detail = self._active_detail
        if self.controller is not None:
            detail = self.controller.next_detail
            if detail != self._active_detail:
                self.load_detail(detail)
                self.cache_state.flush_resident()
        shards = 1 if self.controller is None else self.controller.next_shards
        model, scale = self.models.lookup(
            self.spec.name,
            detail,
            self.trajectory.kind,
            self._render_mode(shards, detail),
        )
        p = model.position(k)
        n_visible = max(int(round(model.n_visible[p] * scale)), 0)
        n_instances = max(int(round(model.n_instances[p] * scale)), 0)
        accesses = max(int(round(model.accesses[p] * scale)), 0)
        hits = min(max(int(round(model.hits[p] * scale)), 0), accesses)
        carried = min(int(round(model.carried_hits[p] * scale)), hits)
        reused = min(
            max(int(round(model.binning_reused[p] * scale)), 0), n_instances
        )
        sim_seconds = model.frame_seconds[p] * scale
        if model.jitter > 0.0:
            sim_seconds *= 1.0 + model.jitter * self._jitter_unit(k)
        served_from = None
        if self.content is not None:
            camera = self.trajectory.camera_at(k)
            if self.controller is not None:
                width, height = self.spec.eval_resolution(detail)
                if (camera.width, camera.height) != (width, height):
                    camera = camera.with_resolution(width, height)
            camera = self.content.canonical_camera(camera)
            key = self.content.frame_key(
                self.spec,
                camera,
                self._frame_clock(k),
                detail,
                self._render_mode(shards, detail),
            )
            self.key_trace.append(key)
            hit = self.content.lookup(key)
            if hit is not None:
                served_from = hit[1]
            else:
                self.content.insert(_placeholder_frame(
                    key,
                    compute_seconds=sim_seconds,
                    n_visible=n_visible,
                    n_instances=n_instances,
                    nbytes=max(int(round(model.frame_nbytes[p] * scale)), 1),
                ))
        sample = self.cache_state.observe(accesses, hits, carried)
        qos = None
        if self.controller is not None:
            qos = self.controller.observe(
                frame=k, detail=detail, sim_seconds=sim_seconds
            )
        record = FrameRecord(
            frame=k,
            n_visible=n_visible,
            n_instances=n_instances,
            sim_seconds=sim_seconds,
            # The digest produces frames in ~O(µs); per-frame host time
            # is noise, and a zero keeps digest records bit-stable.
            wall_seconds=0.0,
            cache=sample,
            binning=BinningStats(
                total_instances=n_instances,
                reused_instances=reused,
                generated_instances=n_instances - reused,
                full_reuse=bool(model.full_reuse[p]),
            ),
            image=None,
            detail=detail,
            qos=qos,
            shards=shards,
            served_from=served_from,
        )
        self._next_frame = k + 1
        return record

    # -- internals ------------------------------------------------------
    def _frame_clock(self, frame: int) -> int:
        """Mirror :meth:`~repro.scenes.catalog.SceneBundle.frame_clock`
        from the calibrated modulus: equal clocks guarantee equal
        clouds, so digest content keys match exact ones."""
        if self.spec.app_type is AppType.STATIC:
            return 0
        return frame % self._n_eval_frames

    def _render_mode(self, shards: int, detail: float) -> tuple:
        """Mirror :meth:`FrameStream._render_mode` without a device."""
        backend = self.config.backend
        if backend is None:
            from repro.render.backends import default_backend

            backend = default_backend()
        tolerance = None
        if backend == "approx":
            if self.controller is not None:
                tolerance = float(tolerance_for_rung(detail / self.detail))
            else:
                tolerance = float(default_policy().tolerance)
        return render_mode_key(
            backend,
            tolerance,
            self.config.fp16,
            shards,
            self.config.interleaved_rows,
            self.config.cross_tile_overlap,
        )

    def _jitter_unit(self, frame: int) -> float:
        """Deterministic per-frame factor in [-1, 1): counter-based
        (stream identity + frame index), so replay after restore is
        byte-identical without shipping any RNG state."""
        digest = hashlib.sha256(
            self._jitter_salt + frame.to_bytes(8, "big")
        ).digest()
        return int.from_bytes(digest[:8], "big") / 2**63 - 1.0


_PLACEHOLDER_IMAGE = np.zeros((1, 1, 3), dtype=np.float64)
_PLACEHOLDER_TRACE = np.zeros(0, dtype=np.int64)


def _placeholder_frame(
    key: str,
    compute_seconds: float,
    n_visible: int,
    n_instances: int,
    nbytes: int,
) -> CachedFrame:
    """A pixel-free cache entry carrying the model's economics.

    The arrays are shared 1-byte-scale placeholders; ``nbytes`` is the
    *modeled* payload size, so tier capacity pressure and
    GreedyDual-Size eviction behave as if the real frame were stored.
    """
    return CachedFrame(
        key=key,
        image=_PLACEHOLDER_IMAGE,
        trace=_PLACEHOLDER_TRACE,
        tiles=_PLACEHOLDER_TRACE,
        compute_seconds=compute_seconds,
        n_visible=n_visible,
        n_instances=n_instances,
        extra_flops=0.0,
        nbytes=int(nbytes),
    )


# ----------------------------------------------------------------------
# Fidelity
# ----------------------------------------------------------------------
@dataclass
class TraceAgreement:
    """Digest-vs-exact agreement metrics for one session."""

    n_frames: int
    max_sim_rel_err: float
    mean_sim_rel_err: float
    details_match: bool
    shards_match: bool
    keys_match: bool
    served_from_match: bool
    mismatches: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def to_dict(self) -> dict:
        return {
            "n_frames": self.n_frames,
            "max_sim_rel_err": self.max_sim_rel_err,
            "mean_sim_rel_err": self.mean_sim_rel_err,
            "details_match": self.details_match,
            "shards_match": self.shards_match,
            "keys_match": self.keys_match,
            "served_from_match": self.served_from_match,
            "mismatches": list(self.mismatches),
        }


def trace_agreement(
    exact: StreamReport,
    digest: StreamReport,
    sim_rel_tol: float = SIM_SECONDS_REL_TOL,
    exact_keys: list | None = None,
    digest_keys: list | None = None,
) -> TraceAgreement:
    """Score a digest trace against the full render's.

    Checks the ISSUE-level fidelity contract: identical detail-ladder
    decisions, identical shard escalation, identical content-cache key
    sequences (when key traces are supplied), identical dedup tier
    decisions, and per-frame ``sim_seconds`` within ``sim_rel_tol``.
    """
    mismatches: list[str] = []
    if exact.n_frames != digest.n_frames:
        mismatches.append(
            f"frame counts differ: exact {exact.n_frames}, "
            f"digest {digest.n_frames}"
        )
    n = min(exact.n_frames, digest.n_frames)
    rel_errs = []
    for e, d in zip(exact.frames[:n], digest.frames[:n]):
        rel_errs.append(
            abs(d.sim_seconds - e.sim_seconds) / max(e.sim_seconds, 1e-12)
        )
    max_err = max(rel_errs, default=0.0)
    mean_err = float(np.mean(rel_errs)) if rel_errs else 0.0
    if max_err > sim_rel_tol:
        mismatches.append(
            f"sim_seconds diverges: max rel err {max_err:.4f} "
            f"> tolerance {sim_rel_tol}"
        )
    details_match = exact.detail_trace[:n] == digest.detail_trace[:n]
    if not details_match:
        mismatches.append("detail-ladder traces differ")
    shards_match = [f.shards for f in exact.frames[:n]] == [
        f.shards for f in digest.frames[:n]
    ]
    if not shards_match:
        mismatches.append("shard-escalation traces differ")
    served_match = [f.served_from for f in exact.frames[:n]] == [
        f.served_from for f in digest.frames[:n]
    ]
    if not served_match:
        mismatches.append("content-cache served_from traces differ")
    keys_match = True
    if exact_keys is not None or digest_keys is not None:
        keys_match = list(exact_keys or []) == list(digest_keys or [])
        if not keys_match:
            mismatches.append("content-cache key sequences differ")
    return TraceAgreement(
        n_frames=n,
        max_sim_rel_err=max_err,
        mean_sim_rel_err=mean_err,
        details_match=details_match,
        shards_match=shards_match,
        keys_match=keys_match,
        served_from_match=served_match,
        mismatches=mismatches,
    )


def assert_trace_agreement(
    exact: StreamReport,
    digest: StreamReport,
    sim_rel_tol: float = SIM_SECONDS_REL_TOL,
    exact_keys: list | None = None,
    digest_keys: list | None = None,
) -> TraceAgreement:
    """:func:`trace_agreement`, raising on any mismatch."""
    agreement = trace_agreement(
        exact,
        digest,
        sim_rel_tol=sim_rel_tol,
        exact_keys=exact_keys,
        digest_keys=digest_keys,
    )
    if not agreement.ok:
        raise ValidationError(
            "digest trace disagrees with the full render: "
            + "; ".join(agreement.mismatches)
        )
    return agreement
