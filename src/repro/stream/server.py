"""Multi-session stream serving over a worker pool.

A :class:`StreamServer` multiplexes N concurrent client sessions
(scene + trajectory pairs) over a pool of workers:

* **One GBU per worker** — each worker owns a single
  :class:`~repro.core.gbu.GBUDevice` shared by every session assigned
  to it; frames go through the Listing-1 busy/handshake protocol, so
  :class:`~repro.errors.DeviceBusyError` is honored rather than
  assumed away.
* **Process isolation** — workers are single-process
  ``concurrent.futures.ProcessPoolExecutor`` instances (one per
  worker, giving session→worker affinity for the cross-frame state);
  ``workers=0`` runs everything in the calling process, which is the
  deterministic mode used by tests.
* **Same-scene request batching** — sessions assigned to a worker are
  grouped by scene, so one dispatched tick renders every same-scene
  session's next frame from a single scene build (the catalog bundle
  is constructed once per (worker, scene, detail)).
* **Cross-frame state** — every session keeps its own
  :class:`~repro.stream.pipeline.FrameStream` (warm binner + temporal
  reuse cache) alive on its worker for the whole stream; sessions
  never share state, only the device and scene bundles.

The scheduler is tick-based: each round trip renders at most one frame
per session, keeping all sessions progressing together the way a
real-time multiplexer would, instead of draining one client before
starting the next.
"""

from __future__ import annotations

import time
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass

from repro.core.gbu import GBUConfig, GBUDevice
from repro.errors import ValidationError
from repro.scenes import build_scene
from repro.stream.pipeline import (
    FrameRecord,
    FrameStream,
    StreamReport,
    streaming_config,
)
from repro.stream.trajectory import CameraTrajectory


@dataclass(frozen=True)
class StreamSession:
    """One client's stream request.

    Attributes
    ----------
    session_id:
        Unique identifier within a :meth:`StreamServer.serve` call.
    scene:
        Catalog scene name.
    trajectory:
        The client's camera path; its length bounds the stream unless
        ``n_frames`` says otherwise.
    n_frames:
        Frames to render (``None``: the whole trajectory).
    detail:
        Scene detail multiplier (tests use < 1).
    keep_images:
        Ship rendered images back with the result.
    config:
        GBU feature configuration (default: :func:`streaming_config`).
        Workers share one device per distinct configuration.
    """

    session_id: str
    scene: str
    trajectory: CameraTrajectory
    n_frames: int | None = None
    detail: float = 1.0
    keep_images: bool = False
    config: GBUConfig | None = None

    @property
    def frame_budget(self) -> int:
        return self.trajectory.n_frames if self.n_frames is None else self.n_frames


@dataclass
class SessionResult:
    """What one session streamed: its report plus placement info."""

    session_id: str
    scene: str
    worker: int
    report: StreamReport

    @property
    def frames(self) -> list[FrameRecord]:
        return self.report.frames


@dataclass
class ServeSummary:
    """Aggregate serving metrics over one :meth:`StreamServer.serve` call.

    Two throughput views are reported:

    * ``sim_frames_per_sec`` — *simulated serving throughput*: every
      worker is one simulated GBU+GPU unit, its busy time is the sum
      of its frames' paper-scale latencies, and the makespan is the
      busiest worker.  This is the deployment-scaling metric (how much
      frame rate N workers serve), consistent with how every other
      number in this repository is extrapolated.
    * ``wall_frames_per_sec`` — host wall-clock throughput of the
      simulation itself; scales with physical cores, not with the
      modeled hardware.
    """

    workers: int
    sessions: int
    total_frames: int
    sim_makespan_seconds: float
    wall_seconds: float

    @property
    def sim_frames_per_sec(self) -> float:
        if self.sim_makespan_seconds <= 0:
            return 0.0
        return self.total_frames / self.sim_makespan_seconds

    @property
    def wall_frames_per_sec(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.total_frames / self.wall_seconds

    @staticmethod
    def from_results(
        results: list[SessionResult], workers: int, wall_seconds: float
    ) -> "ServeSummary":
        busy: dict[int, float] = {}
        total = 0
        for r in results:
            total += r.report.n_frames
            busy[r.worker] = busy.get(r.worker, 0.0) + float(
                sum(f.sim_seconds for f in r.frames)
            )
        makespan = max(busy.values(), default=0.0)
        return ServeSummary(
            workers=max(workers, 1),
            sessions=len(results),
            total_frames=total,
            sim_makespan_seconds=makespan,
            wall_seconds=wall_seconds,
        )


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
class _WorkerState:
    """Per-worker serving state: one device, shared bundles, sessions."""

    def __init__(self) -> None:
        self.devices: dict[GBUConfig, GBUDevice] = {}
        self.bundles: dict[tuple[str, float], object] = {}
        self.streams: dict[str, FrameStream] = {}
        self.budgets: dict[str, int] = {}

    def reset(self) -> None:
        self.devices.clear()
        self.bundles.clear()
        self.streams.clear()
        self.budgets.clear()

    def _device_for(self, config: GBUConfig) -> GBUDevice:
        if config not in self.devices:
            self.devices[config] = GBUDevice(config=config)
        return self.devices[config]

    def _stream_for(self, session: StreamSession | str) -> FrameStream:
        session_id = (
            session if isinstance(session, str) else session.session_id
        )
        stream = self.streams.get(session_id)
        if stream is not None:
            return stream
        if isinstance(session, str):
            raise ValidationError(
                f"session '{session}' referenced by id before registration"
            )
        key = (session.scene, session.detail)
        bundle = self.bundles.get(key)
        if bundle is None:
            bundle = build_scene(session.scene, detail=session.detail)
            self.bundles[key] = bundle
        config = streaming_config() if session.config is None else session.config
        stream = FrameStream(
            session.scene,
            session.trajectory,
            detail=session.detail,
            keep_images=session.keep_images,
            bundle=bundle,
            device=self._device_for(config),
        )
        self.streams[session.session_id] = stream
        self.budgets[session.session_id] = session.frame_budget
        return stream

    def render_tick(
        self, sessions: list[StreamSession | str]
    ) -> list[tuple[str, FrameRecord]]:
        """Render the next frame of every (unfinished) session given.

        The sessions of one tick batch share a scene, so they render
        back-to-back from the same bundle on this worker's device.
        After a session's first tick the scheduler sends only its id
        (the full descriptor — trajectory cameras included — crosses
        the process boundary once).
        """
        out = []
        for session in sessions:
            stream = self._stream_for(session)
            session_id = (
                session if isinstance(session, str) else session.session_id
            )
            if stream.frames_rendered >= self.budgets[session_id]:
                continue
            out.append((session_id, stream.render_next()))
        return out


_STATE: _WorkerState | None = None


def _subprocess_state() -> _WorkerState:
    global _STATE
    if _STATE is None:
        _STATE = _WorkerState()
    return _STATE


def _subprocess_render_tick(
    sessions: list[StreamSession | str],
) -> list[tuple[str, FrameRecord]]:
    return _subprocess_state().render_tick(sessions)


def _subprocess_reset() -> None:
    _subprocess_state().reset()


# ----------------------------------------------------------------------
# Server side
# ----------------------------------------------------------------------
class StreamServer:
    """Serve N concurrent stream sessions over a worker pool.

    Parameters
    ----------
    workers:
        Worker processes.  ``0`` serves in the calling process (no
        pool, fully deterministic); ``>= 1`` spawns that many
        single-process executors, giving every worker exclusive,
        long-lived session state.
    """

    def __init__(self, workers: int = 2) -> None:
        if workers < 0:
            raise ValidationError("worker count cannot be negative")
        self.workers = workers
        self._executors: list[ProcessPoolExecutor] = []
        self._local_states: list[_WorkerState] = []

    # -- lifecycle ------------------------------------------------------
    def __enter__(self) -> "StreamServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Shut down the worker pool (idempotent)."""
        for executor in self._executors:
            executor.shutdown()
        self._executors.clear()
        self._local_states.clear()

    def _ensure_pool(self) -> None:
        if self.workers == 0:
            if not self._local_states:
                self._local_states = [_WorkerState()]
            return
        while len(self._executors) < self.workers:
            self._executors.append(ProcessPoolExecutor(max_workers=1))

    # -- scheduling -----------------------------------------------------
    @staticmethod
    def assign_workers(
        sessions: list[StreamSession], workers: int
    ) -> list[int]:
        """Round-robin session→worker placement.

        Sessions are spread across workers in arrival order, so
        same-scene sessions land on *different* workers when capacity
        allows (parallelism first); batching then merges whatever
        same-scene sessions ended up together on a worker.
        """
        n = max(workers, 1)
        return [i % n for i in range(len(sessions))]

    @staticmethod
    def _batches(
        sessions: list[StreamSession], placement: list[int], workers: int
    ) -> list[list[list[StreamSession]]]:
        """Per worker, the list of same-scene session batches."""
        per_worker: list[list[list[StreamSession]]] = []
        for w in range(max(workers, 1)):
            mine = [s for s, p in zip(sessions, placement) if p == w]
            by_scene: dict[str, list[StreamSession]] = {}
            for s in mine:
                by_scene.setdefault(s.scene, []).append(s)
            per_worker.append(list(by_scene.values()))
        return per_worker

    # -- serving --------------------------------------------------------
    def serve(self, sessions: list[StreamSession]) -> list[SessionResult]:
        """Stream every session to completion; returns per-session results.

        Frames are dispatched in ticks (one frame per session per
        round), with each worker receiving one task per same-scene
        batch it hosts.
        """
        if not sessions:
            return []
        ids = [s.session_id for s in sessions]
        if len(set(ids)) != len(ids):
            raise ValidationError("session ids must be unique")
        self._ensure_pool()
        self._reset_workers()

        placement = self.assign_workers(sessions, self.workers)
        batches = self._batches(sessions, placement, self.workers)
        reports = {
            s.session_id: StreamReport(
                scene=s.scene, trajectory=s.trajectory.kind
            )
            for s in sessions
        }
        budget = {s.session_id: s.frame_budget for s in sessions}

        max_frames = max(budget.values())
        shipped: set[str] = set()
        for _ in range(max_frames):
            pending: list[tuple[int, Future | list]] = []
            for w, worker_batches in enumerate(batches):
                for batch in worker_batches:
                    live = [
                        s
                        for s in batch
                        if len(reports[s.session_id].frames)
                        < budget[s.session_id]
                    ]
                    if not live:
                        continue
                    # Ship the full descriptor once; ids afterwards.
                    payload: list[StreamSession | str] = [
                        s if s.session_id not in shipped else s.session_id
                        for s in live
                    ]
                    shipped.update(s.session_id for s in live)
                    pending.append((w, self._dispatch(w, payload)))
            if not pending:
                break
            for w, item in pending:
                results = item.result() if isinstance(item, Future) else item
                for session_id, record in results:
                    reports[session_id].frames.append(record)

        worker_of = dict(zip(ids, placement))
        return [
            SessionResult(
                session_id=s.session_id,
                scene=s.scene,
                worker=worker_of[s.session_id],
                report=reports[s.session_id],
            )
            for s in sessions
        ]

    def _dispatch(self, worker: int, batch: list[StreamSession | str]):
        if self.workers == 0:
            return self._local_states[0].render_tick(batch)
        return self._executors[worker].submit(_subprocess_render_tick, batch)

    def _reset_workers(self) -> None:
        if self.workers == 0:
            for state in self._local_states:
                state.reset()
            return
        for executor in self._executors:
            executor.submit(_subprocess_reset).result()

    # -- convenience ----------------------------------------------------
    def serve_timed(
        self, sessions: list[StreamSession]
    ) -> tuple[list[SessionResult], ServeSummary]:
        """:meth:`serve`, plus the aggregate :class:`ServeSummary`."""
        t0 = time.perf_counter()
        results = self.serve(sessions)
        wall = time.perf_counter() - t0
        return results, ServeSummary.from_results(results, self.workers, wall)

    def warm_up(self) -> float:
        """Spin up every worker process (imports + allocator warmup).

        Returns the wall seconds spent; benchmarks call this before
        timing so pool start-up is not billed to throughput.
        """
        t0 = time.perf_counter()
        self._ensure_pool()
        if self.workers > 0:
            for executor in self._executors:
                executor.submit(_subprocess_reset).result()
        return time.perf_counter() - t0
