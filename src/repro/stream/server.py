"""Multi-session stream serving over a fault-tolerant worker pool.

A :class:`StreamServer` multiplexes N concurrent client sessions
(scene + trajectory pairs) over a pool of workers:

* **One GBU per worker** — each worker owns a single
  :class:`~repro.core.gbu.GBUDevice` shared by every session assigned
  to it; frames go through the Listing-1 busy/handshake protocol, so
  :class:`~repro.errors.DeviceBusyError` is honored rather than
  assumed away.
* **Process isolation** — workers are single-process
  ``concurrent.futures.ProcessPoolExecutor`` instances (one per
  worker, giving session→worker affinity for the cross-frame state);
  ``workers=0`` runs everything in the calling process, and
  ``local=True`` runs N in-process worker states — the deterministic
  modes used by tests and benchmarks.
* **Scheduling** — session placement, admission control and
  rebalancing live in :mod:`repro.stream.scheduler` (``placement="rr"``
  arrival order, ``"load"`` cost-based).  Workers report
  budget-exhausted sessions back, so finished streams stop costing a
  dispatch per tick.
* **Fault tolerance** — every successful tick returns per-session
  :class:`~repro.stream.checkpoint.SessionCheckpoint` snapshots.  When
  a worker dies mid-serve (``BrokenProcessPool``, or an injected fault
  in the deterministic modes) the server respawns the worker, replays
  the checkpoints of its unfinished sessions, and re-renders the lost
  tick — recovered sessions produce frames byte-identical to an
  uninterrupted run.  The same replay machinery powers load
  rebalancing migrations.
* **Same-scene request batching** — sessions assigned to a worker are
  grouped by scene, so one dispatched tick renders every same-scene
  session's next frame from a single scene build (the catalog bundle
  is constructed once per (worker, scene, detail) and kept in a
  bounded per-worker LRU).
* **Quality of service** — sessions with a ``target_fps`` run under
  the closed-loop detail controller of :mod:`repro.stream.qos`;
  controller state rides along in the session checkpoints, so
  recovery and migration replay the identical detail ladder.
* **Cross-frame state** — every session keeps its own
  :class:`~repro.stream.pipeline.FrameStream` (warm binner + temporal
  reuse cache) alive on its worker for the whole stream; sessions
  never share state, only the device and scene bundles.

The scheduler is tick-based: each round trip renders at most one frame
per admitted session, keeping all sessions progressing together the
way a real-time multiplexer would, instead of draining one client
before starting the next.

Serving comes in two shapes over the same machinery: the closed
:meth:`StreamServer.serve` call (a fixed session list streamed to
completion) and the incremental protocol — :meth:`StreamServer.begin`,
:meth:`~StreamServer.submit`, :meth:`~StreamServer.step`,
:meth:`~StreamServer.finish` — that open-ended callers drive tick by
tick.  :meth:`~StreamServer.extract_session` /
:meth:`~StreamServer.inject_session` move a live session between
servers as a (descriptor, checkpoint, report) triple; the fleet layer
(:mod:`repro.stream.fleet`) builds cross-node migration on exactly
this.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable

from repro.core.gbu import GBUConfig, GBUDevice
from repro.core.reuse_cache import CacheEconomics
from repro.errors import SimulationError, ValidationError
from repro.scenes import BundleCache
from repro.stream.checkpoint import (
    SessionCheckpoint,
    capture_checkpoint,
    restore_checkpoint,
)
from repro.stream.content_cache import (
    CacheTier,
    ContentCacheConfig,
    SessionContentView,
    merge_economics,
)
from repro.stream.digest import DigestFrameStream, WorkloadModelTable
from repro.stream.pipeline import (
    PIPELINES,
    FramePipeline,
    FrameStream,
    StreamReport,
    streaming_config,
)
from repro.stream.qos import FrameDeadline, QoSPolicy, QualityController
from repro.stream.reporting import ServeSummary, SessionResult, TickResult
from repro.stream.scheduler import Migration, StreamScheduler, make_scheduler
from repro.stream.trajectory import CameraTrajectory

__all__ = [
    "ServeSummary",
    "SessionResult",
    "StreamServer",
    "StreamSession",
    "TickResult",
]


@dataclass(frozen=True)
class StreamSession:
    """One client's stream request.

    Attributes
    ----------
    session_id:
        Unique identifier within a :meth:`StreamServer.serve` call.
    scene:
        Catalog scene name.
    trajectory:
        The client's camera path; its length bounds the stream unless
        ``n_frames`` says otherwise.
    n_frames:
        Frames to render (``None``: the whole trajectory).
    detail:
        Scene detail multiplier (tests use < 1).
    keep_images:
        Ship rendered images back with the result.
    config:
        GBU feature configuration (default: :func:`streaming_config`).
        Workers share one device per distinct configuration.
    target_fps:
        When set, the session runs under deadline-aware quality
        control (:mod:`repro.stream.qos`): each frame is judged
        against the ``1/target_fps`` budget and a per-session
        controller adapts detail frame-by-frame.  ``None`` keeps the
        fixed-detail behaviour.
    qos:
        Controller knobs (:class:`~repro.stream.qos.QoSPolicy`);
        defaults to the standard adaptive policy.  Use
        :meth:`QoSPolicy.fixed` to track deadlines without adapting.
        Ignored unless ``target_fps`` is set.
    pipeline:
        Frame-pipeline mode (:data:`~repro.stream.pipeline.PIPELINES`):
        ``"exact"`` renders every frame; ``"digest"`` advances the
        session from calibrated :class:`~repro.stream.digest.
        WorkloadModel` s (the server must be given a model table).
        Digest sessions cannot keep images.
    """

    session_id: str
    scene: str
    trajectory: CameraTrajectory
    n_frames: int | None = None
    detail: float = 1.0
    keep_images: bool = False
    config: GBUConfig | None = None
    target_fps: float | None = None
    qos: QoSPolicy | None = None
    pipeline: str = "exact"

    @property
    def frame_budget(self) -> int:
        return self.trajectory.n_frames if self.n_frames is None else self.n_frames


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
class _WorkerState:
    """Per-worker serving state: one device, shared bundles, sessions.

    Scene bundles live in a bounded :class:`~repro.scenes.BundleCache`
    keyed ``(scene, detail)``: adaptive-quality sessions touch one
    bundle per detail rung they visit, so an unbounded mapping would
    grow for the lifetime of the worker.
    """

    def __init__(
        self,
        bundle_cache_size: int = 8,
        content: ContentCacheConfig | None = None,
        content_parent: CacheTier | None = None,
        bundle_builder=None,
        models: WorkloadModelTable | None = None,
    ) -> None:
        self.devices: dict[GBUConfig, GBUDevice] = {}
        self.bundle_builder = bundle_builder
        self.bundles = BundleCache(
            capacity=bundle_cache_size, builder=bundle_builder
        )
        self.models = models
        self.streams: dict[str, FramePipeline] = {}
        self.budgets: dict[str, int] = {}
        self.details: dict[str, float] = {}
        # Content-addressed render cache: this worker owns the worker
        # tier (chained to the server's node tier when in-process; a
        # subprocess worker's chain ends here) and one session tier per
        # live session, created in _stream_for.
        self.content_config = content
        self.content_parent = content_parent
        self.worker_tier: CacheTier | None = None
        if content is not None:
            self.worker_tier = CacheTier(
                "worker", content.worker_bytes, parent=content_parent
            )
        self.views: dict[str, SessionContentView] = {}

    def reset(self, bundle_cache_size: int | None = None) -> None:
        self.devices.clear()
        if bundle_cache_size is not None:
            self.bundles = BundleCache(
                capacity=bundle_cache_size, builder=self.bundle_builder
            )
        else:
            self.bundles.clear()
        self.streams.clear()
        self.budgets.clear()
        self.details.clear()
        if self.content_config is not None:
            self.worker_tier = CacheTier(
                "worker",
                self.content_config.worker_bytes,
                parent=self.content_parent,
            )
        self.views.clear()

    def _device_for(self, config: GBUConfig) -> GBUDevice:
        if config not in self.devices:
            self.devices[config] = GBUDevice(config=config)
        return self.devices[config]

    def _stream_for(self, session: StreamSession | str) -> FramePipeline:
        session_id = (
            session if isinstance(session, str) else session.session_id
        )
        stream = self.streams.get(session_id)
        if stream is not None and session_id in self.budgets:
            return stream
        if isinstance(session, str):
            # Unknown id — or a half-registered stream that lost its
            # budget across a reset/recovery.  Either way the session
            # is not serviceable from an id alone.
            raise ValidationError(
                f"session '{session_id}' referenced by id before registration"
            )
        if session.pipeline not in PIPELINES:
            raise ValidationError(
                f"unknown pipeline '{session.pipeline}' "
                f"(choose from {PIPELINES})"
            )
        config = streaming_config() if session.config is None else session.config
        controller = None
        if session.target_fps is not None:
            controller = QualityController(
                FrameDeadline(session.target_fps),
                session.qos,
                nominal_detail=session.detail,
            )
        view = None
        if self.content_config is not None:
            session_tier = CacheTier(
                "session",
                self.content_config.session_bytes,
                parent=self.worker_tier,
            )
            view = SessionContentView(self.content_config, session_tier)
            self.views[session.session_id] = view
        if session.pipeline == "digest":
            if self.models is None:
                raise ValidationError(
                    f"session '{session_id}' requests the digest pipeline "
                    "but the server has no workload models (models=...)"
                )
            stream = DigestFrameStream(
                session.scene,
                session.trajectory,
                self.models,
                config=config,
                detail=session.detail,
                keep_images=session.keep_images,
                controller=controller,
                content=view,
            )
        else:
            bundle = self.bundles.get(session.scene, session.detail)
            stream = FrameStream(
                session.scene,
                session.trajectory,
                detail=session.detail,
                keep_images=session.keep_images,
                bundle=bundle,
                device=self._device_for(config),
                controller=controller,
                bundle_provider=self.bundles.get,
                content=view,
            )
        self.streams[session.session_id] = stream
        self.budgets[session.session_id] = session.frame_budget
        self.details[session.session_id] = session.detail
        return stream

    def render_tick(self, sessions: list[StreamSession | str]) -> TickResult:
        """Render the next frame of every (unfinished) session given.

        The sessions of one tick batch share a scene, so they render
        back-to-back from the same bundle on this worker's device.
        After a session's first tick the scheduler sends only its id
        (the full descriptor — trajectory cameras included — crosses
        the process boundary once).  Budget-exhausted sessions render
        nothing and are reported in ``done`` so the scheduler stops
        dispatching them.
        """
        result = TickResult()
        for session in sessions:
            stream = self._stream_for(session)
            session_id = (
                session if isinstance(session, str) else session.session_id
            )
            budget = self.budgets[session_id]
            if stream.frames_rendered >= budget:
                result.done.append(session_id)
                continue
            result.frames.append((session_id, stream.render_next()))
            result.checkpoints[session_id] = capture_checkpoint(
                session_id, stream, detail=self.details[session_id]
            )
            view = self.views.get(session_id)
            if view is not None:
                merge_economics(result.content, view.drain())
            if stream.frames_rendered >= budget:
                result.done.append(session_id)
        return result

    def restore_sessions(
        self, payload: list[tuple[StreamSession, SessionCheckpoint | None]]
    ) -> None:
        """(Re)register sessions, replaying checkpoints where given.

        Used after a worker respawn (fresh process, every session of
        the dead worker is replayed) and for migrations (one session
        arrives on an already-running worker).  A ``None`` checkpoint
        means the session had not rendered any frame yet and simply
        starts from frame 0.
        """
        for session, ckpt in payload:
            if ckpt is not None and not ckpt.belongs_to(session):
                raise ValidationError(
                    f"checkpoint ({ckpt.session_id}, {ckpt.scene}, "
                    f"detail={ckpt.detail}) does not belong to session "
                    f"({session.session_id}, {session.scene}, "
                    f"detail={session.detail})"
                )
            self.streams.pop(session.session_id, None)
            self.budgets.pop(session.session_id, None)
            self.views.pop(session.session_id, None)
            stream = self._stream_for(session)
            if ckpt is not None:
                restore_checkpoint(stream, ckpt)

    def drop_sessions(self, session_ids: list[str]) -> None:
        """Forget sessions (migration source side)."""
        for session_id in session_ids:
            self.streams.pop(session_id, None)
            self.budgets.pop(session_id, None)
            self.details.pop(session_id, None)
            self.views.pop(session_id, None)


_STATE: _WorkerState | None = None


def _subprocess_state() -> _WorkerState:
    global _STATE
    if _STATE is None:
        _STATE = _WorkerState()
    return _STATE


def _subprocess_render_tick(sessions: list[StreamSession | str]) -> TickResult:
    return _subprocess_state().render_tick(sessions)


def _subprocess_reset(
    bundle_cache_size: int | None = None,
    content: ContentCacheConfig | None = None,
    models: WorkloadModelTable | None = None,
) -> None:
    """Reset the subprocess worker, optionally (re)arming its content
    cache and digest workload models.  Only config and models cross
    the process boundary: a subprocess worker's tier chain ends at its
    own worker tier (node/fleet tiers and bundle interning cannot
    share memory across processes — the deterministic ``local`` modes
    exercise the full hierarchy)."""
    global _STATE
    if content is not None or models is not None:
        _STATE = _WorkerState(
            bundle_cache_size=(
                bundle_cache_size if bundle_cache_size is not None else 8
            ),
            content=content,
            models=models,
        )
        return
    _subprocess_state().reset(bundle_cache_size)


def _subprocess_restore(
    payload: list[tuple[StreamSession, SessionCheckpoint | None]],
) -> None:
    _subprocess_state().restore_sessions(payload)


def _subprocess_drop(session_ids: list[str]) -> None:
    _subprocess_state().drop_sessions(session_ids)


def _subprocess_crash() -> None:  # pragma: no cover - kills the process
    """Fault injection: die the way a crashed worker does."""
    os._exit(13)


# ----------------------------------------------------------------------
# Server side
# ----------------------------------------------------------------------
class StreamServer:
    """Serve N concurrent stream sessions over a worker pool.

    Parameters
    ----------
    workers:
        Worker processes.  ``0`` serves in the calling process (no
        pool, fully deterministic); ``>= 1`` spawns that many
        single-process executors, giving every worker exclusive,
        long-lived session state.
    placement:
        Session→worker policy: ``"load"`` (default, cost-based with
        rebalancing) or ``"rr"`` (arrival-order round-robin).  See
        :mod:`repro.stream.scheduler`.
    max_inflight:
        Admission control: at most this many sessions are served
        concurrently; the rest queue and are admitted as sessions
        finish.  ``None`` admits everything immediately.
    rebalance_threshold:
        Relative remaining-cost spread above which the load-aware
        policy migrates a session (ignored by ``"rr"``).
    max_respawns:
        Worker crashes tolerated per ``serve`` before giving up with
        :class:`~repro.errors.SimulationError`.
    fault_injector:
        Test/chaos hook ``(tick, worker) -> bool``; returning True
        kills that worker just before the tick is dispatched (process
        workers die via ``os._exit``, deterministic modes lose their
        state), exercising the recovery path.
    local:
        With ``workers >= 1``, keep that many *in-process* worker
        states instead of spawning processes — full scheduling,
        batching and recovery semantics, fully deterministic, no IPC.
        Used by tests and the scheduler benchmark.
    estimator:
        Override the static per-frame cost proxy
        (:func:`~repro.stream.scheduler.static_frame_estimate`);
        tests inject deliberately wrong estimates to exercise the
        rebalancing path.
    bundle_cache_size:
        Capacity of each worker's bounded ``(scene, detail)``
        bundle LRU (adaptive sessions touch one bundle per detail
        rung; see :class:`~repro.scenes.BundleCache`).
    content_cache:
        Enable the tiered content-addressed render cache
        (:mod:`repro.stream.content_cache`).  The server owns the node
        tier (cleared per :meth:`begin`); each worker owns a worker
        tier chained to it, each session a session tier chained to
        that.  Subprocess workers keep session+worker tiers only (no
        shared memory across processes).  Per-tier economics accumulate
        in :attr:`content_totals` and ride on each tick's
        :class:`TickResult`.
    content_parent:
        Tier the node tier chains to (the fleet tier — set by
        :class:`~repro.stream.fleet.EdgeFleet`).
    bundle_builder:
        ``(scene, detail) -> SceneBundle`` override for worker bundle
        caches; the fleet passes its
        :class:`~repro.stream.content_cache.BundleIntern` so
        co-located workers share one immutable bundle per
        ``(scene, detail)``.
    models:
        Calibrated :class:`~repro.stream.digest.WorkloadModelTable`
        backing sessions with ``pipeline="digest"``.  Required before
        any digest session is served; exact sessions ignore it.  The
        table is shipped to every worker (it is a plain picklable
        registry).
    """

    def __init__(
        self,
        workers: int = 2,
        placement: str = "load",
        max_inflight: int | None = None,
        rebalance_threshold: float = 0.25,
        max_respawns: int = 2,
        fault_injector: Callable[[int, int], bool] | None = None,
        local: bool = False,
        estimator: Callable[[str, float], float] | None = None,
        bundle_cache_size: int = 8,
        content_cache: ContentCacheConfig | None = None,
        content_parent: CacheTier | None = None,
        bundle_builder=None,
        models: WorkloadModelTable | None = None,
    ) -> None:
        if workers < 0:
            raise ValidationError("worker count cannot be negative")
        if max_respawns < 0:
            raise ValidationError("max_respawns cannot be negative")
        if bundle_cache_size < 1:
            raise ValidationError("bundle cache size must be at least 1")
        self.workers = workers
        self.bundle_cache_size = bundle_cache_size
        self.placement = placement
        self.max_inflight = max_inflight
        self.rebalance_threshold = rebalance_threshold
        self.max_respawns = max_respawns
        self.fault_injector = fault_injector
        self.estimator = estimator
        self.local = local or workers == 0
        self.content_cache = content_cache
        self.models = models
        self._bundle_builder = bundle_builder
        self._node_tier: CacheTier | None = None
        if content_cache is not None:
            self._node_tier = CacheTier(
                "node", content_cache.node_bytes, parent=content_parent
            )
        #: Per-tier content-cache economics accumulated over the open
        #: serve (reset by :meth:`begin`); empty without a content
        #: cache.
        self.content_totals: dict[str, CacheEconomics] = {}
        self._n_workers = max(workers, 1)
        self._executors: list[ProcessPoolExecutor] = []
        self._local_states: list[_WorkerState] = []
        #: Per-session dispatch counts of the last ``serve`` call (how
        #: many tick payloads named the session) — the regression meter
        #: for finished-session dispatch.
        self.dispatch_counts: dict[str, int] = {}
        #: Worker respawns performed during the last ``serve``.
        self.recoveries: int = 0
        #: Checkpoint migrations executed during the last ``serve``.
        self.migrations: list[Migration] = []
        #: Per-worker summed paper-scale busy seconds of the last
        #: ``serve`` (frames attributed to the rendering worker, exact
        #: under migration).
        self.worker_busy_seconds: dict[int, float] = {}
        #: Per-session simulated completion stamp of each frame — the
        #: rendering worker's cumulative busy seconds when the frame
        #: finished.  Unlike a frame's own ``sim_seconds`` this *does*
        #: depend on placement (queueing behind co-scheduled sessions),
        #: so it is the response-time metric the scheduler benchmark
        #: compares across policies.
        self.frame_completions: dict[str, list[float]] = {}
        # Incremental-serving state (between begin() and finish()).
        self._scheduler: StreamScheduler | None = None
        self._reports: dict[str, StreamReport] = {}
        self._checkpoints: dict[str, SessionCheckpoint] = {}
        self._shipped: set[str] = set()
        self._steps = 0

    # -- lifecycle ------------------------------------------------------
    def __enter__(self) -> "StreamServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Shut down the worker pool (idempotent)."""
        for executor in self._executors:
            executor.shutdown()
        self._executors.clear()
        self._local_states.clear()

    def _ensure_pool(self) -> None:
        if self.local:
            while len(self._local_states) < self._n_workers:
                self._local_states.append(
                    _WorkerState(
                        bundle_cache_size=self.bundle_cache_size,
                        content=self.content_cache,
                        content_parent=self._node_tier,
                        bundle_builder=self._bundle_builder,
                        models=self.models,
                    )
                )
            return
        while len(self._executors) < self.workers:
            self._executors.append(ProcessPoolExecutor(max_workers=1))

    # -- scheduling -----------------------------------------------------
    @staticmethod
    def _scene_batches(
        sessions: list[StreamSession],
    ) -> list[list[StreamSession]]:
        """Group one worker's sessions into same-scene batches."""
        by_scene: dict[str, list[StreamSession]] = {}
        for s in sessions:
            by_scene.setdefault(s.scene, []).append(s)
        return list(by_scene.values())

    # -- incremental serving --------------------------------------------
    @property
    def serving(self) -> bool:
        """A serve is open (between :meth:`begin` and :meth:`finish`)."""
        return self._scheduler is not None

    @property
    def n_active(self) -> int:
        """Admitted, unfinished sessions (0 outside an open serve)."""
        return self._scheduler.inflight if self.serving else 0

    @property
    def n_queued(self) -> int:
        """Sessions waiting in the admission queue."""
        return len(self._scheduler.queued) if self.serving else 0

    @property
    def busy_makespan(self) -> float:
        """Busiest worker's simulated busy seconds of the open serve."""
        if not self.serving:
            return max(self.worker_busy_seconds.values(), default=0.0)
        return max(self._scheduler.busy_seconds.values(), default=0.0)

    def begin(self, sessions: list[StreamSession] | None = None) -> None:
        """Open an incremental serve.

        Unlike :meth:`serve` this does not run to completion: the
        caller drives ticks with :meth:`step`, may :meth:`submit` new
        sessions at any point (open-loop traffic), and collects
        results with :meth:`finish`.  The fleet layer
        (:mod:`repro.stream.fleet`) is built on this protocol.
        """
        if self.serving:
            raise ValidationError("a serve is already open on this server")
        sessions = list(sessions or [])
        ids = [s.session_id for s in sessions]
        if len(set(ids)) != len(ids):
            raise ValidationError("session ids must be unique")
        self._ensure_pool()
        self._reset_workers()
        if self._node_tier is not None:
            self._node_tier.clear()
        self.content_totals = {}
        kwargs = {} if self.estimator is None else {"estimator": self.estimator}
        self._scheduler = make_scheduler(
            self.placement,
            sessions,
            self._n_workers,
            max_inflight=self.max_inflight,
            rebalance_threshold=self.rebalance_threshold,
            **kwargs,
        )
        self._reports = {
            s.session_id: StreamReport(
                scene=s.scene, trajectory=s.trajectory.kind
            )
            for s in sessions
        }
        self._checkpoints = {}
        self._shipped = set()
        self._steps = 0
        self.dispatch_counts = {s.session_id: 0 for s in sessions}
        self.recoveries = 0
        self.migrations = []
        self.frame_completions = {s.session_id: [] for s in sessions}
        self.worker_busy_seconds = {}

    def submit(self, session: StreamSession) -> None:
        """Add a session to the open serve (admission rules apply)."""
        if not self.serving:
            raise ValidationError("submit requires an open serve (begin first)")
        if session.session_id in self._reports:
            raise ValidationError(
                f"session id '{session.session_id}' is already being served"
            )
        self._reports[session.session_id] = StreamReport(
            scene=session.scene, trajectory=session.trajectory.kind
        )
        self.dispatch_counts[session.session_id] = 0
        self.frame_completions[session.session_id] = []
        self._scheduler.add_session(session)

    def step(self) -> TickResult:
        """Run one scheduling tick: render at most one frame per
        admitted session, recover crashes, apply rebalancing.

        Returns the tick's merged :class:`TickResult` (empty when
        every session has drained — the caller's stop signal).
        """
        if not self.serving:
            raise ValidationError("step requires an open serve (begin first)")
        scheduler = self._scheduler
        assignments = scheduler.tick_assignments()
        if not assignments:
            return TickResult()
        self._inject_faults(self._steps, assignments)
        results = self._run_tick(assignments)
        for tick_result in results:
            for session_id, record in tick_result.frames:
                self._reports[session_id].frames.append(record)
                scheduler.observe_frame(
                    session_id, record.sim_seconds, detail=record.detail
                )
                self.frame_completions[session_id].append(
                    scheduler.busy_seconds[scheduler.worker_of(session_id)]
                )
            for session_id in tick_result.done:
                scheduler.mark_done(session_id)
        self._apply_migrations()
        self.worker_busy_seconds = dict(scheduler.busy_seconds)
        self._steps += 1
        merged = TickResult.merged(results)
        merge_economics(self.content_totals, merged.content)
        return merged

    def finish(self) -> list[SessionResult]:
        """Close the open serve and return the per-session results.

        Sessions are reported in submission order; a session migrated
        away with :meth:`extract_session` is reported by the server it
        migrated *to* (its report travels with it).
        """
        if not self.serving:
            raise ValidationError("finish requires an open serve (begin first)")
        scheduler = self._scheduler
        results = [
            SessionResult(
                session_id=session_id,
                scene=report.scene,
                worker=scheduler.worker_of(session_id),
                report=report,
            )
            for session_id, report in self._reports.items()
        ]
        self.worker_busy_seconds = dict(scheduler.busy_seconds)
        self._scheduler = None
        self._reports = {}
        self._checkpoints = {}
        self._shipped = set()
        return results

    # -- cross-server migration ----------------------------------------
    def extract_session(
        self, session_id: str
    ) -> tuple[StreamSession, SessionCheckpoint | None, StreamReport]:
        """Remove a session from the open serve for migration elsewhere.

        Returns the session descriptor, its latest checkpoint (``None``
        when no frame rendered yet) and the frames streamed so far —
        everything :meth:`inject_session` on another server needs to
        resume the stream byte-identically.
        """
        if not self.serving:
            raise ValidationError("extract requires an open serve")
        if session_id not in self._reports:
            raise ValidationError(f"unknown session '{session_id}'")
        scheduler = self._scheduler
        admitted = (
            session_id not in scheduler.queued
            and scheduler.worker_of(session_id) >= 0
        )
        worker = scheduler.worker_of(session_id) if admitted else -1
        session = scheduler.remove_session(session_id)
        if admitted:
            self._dispatch_drop(worker, [session_id])
        self._shipped.discard(session_id)
        checkpoint = self._checkpoints.pop(session_id, None)
        report = self._reports.pop(session_id)
        return session, checkpoint, report

    def inject_session(
        self,
        session: StreamSession,
        checkpoint: SessionCheckpoint | None = None,
        report: StreamReport | None = None,
    ) -> int:
        """Resume a migrated-in session on this server's open serve.

        The checkpoint is replayed onto a worker chosen by this
        server's placement policy (bypassing the admission queue — the
        source server already admitted the client); the carried report
        keeps accumulating, so the final :class:`SessionResult` spans
        the whole stream regardless of how many servers rendered it.
        Returns the worker the session landed on.
        """
        if not self.serving:
            raise ValidationError("inject requires an open serve")
        if session.session_id in self._reports:
            raise ValidationError(
                f"session id '{session.session_id}' is already being served"
            )
        if checkpoint is not None and not checkpoint.belongs_to(session):
            raise ValidationError(
                f"checkpoint ({checkpoint.session_id}, {checkpoint.scene}, "
                f"detail={checkpoint.detail}) cannot be injected as session "
                f"({session.session_id}, {session.scene}, "
                f"detail={session.detail})"
            )
        if report is None:
            report = StreamReport(
                scene=session.scene, trajectory=session.trajectory.kind
            )
        frames_done = (
            checkpoint.next_frame if checkpoint is not None else len(report.frames)
        )
        worker = self._scheduler.attach_session(session, frames_done=frames_done)
        self._reports[session.session_id] = report
        self.dispatch_counts.setdefault(session.session_id, 0)
        self.frame_completions.setdefault(session.session_id, [])
        if checkpoint is not None:
            self._checkpoints[session.session_id] = checkpoint
        self._dispatch_restore(worker, [(session, checkpoint)])
        self._shipped.add(session.session_id)
        return worker

    def remaining_cost(self) -> float:
        """Estimated outstanding simulated seconds across all workers."""
        if not self.serving:
            return 0.0
        return float(sum(self._scheduler.remaining_cost().values()))

    def migration_candidates(self) -> list[tuple[str, float]]:
        """Active sessions with their estimated remaining seconds.

        The fleet router uses this to pick which session to migrate
        off an overloaded node (largest candidate that fits the
        inter-node cost gap).
        """
        if not self.serving:
            return []
        scheduler = self._scheduler
        out = []
        for w in range(scheduler.workers):
            for session in scheduler.active_on(w):
                left = scheduler.frames_done(session.session_id)
                left = session.frame_budget - left
                out.append(
                    (
                        session.session_id,
                        max(left, 0) * scheduler.frame_estimate(session),
                    )
                )
        return sorted(out, key=lambda item: (-item[1], item[0]))

    def active_scenes(self) -> set[str]:
        """Scenes of the currently admitted, unfinished sessions."""
        if not self.serving:
            return set()
        scheduler = self._scheduler
        return {
            session.scene
            for w in range(scheduler.workers)
            for session in scheduler.active_on(w)
        }

    # -- flow control (gateway backpressure) ----------------------------
    def has_session(self, session_id: str) -> bool:
        """Whether the open serve is tracking ``session_id``."""
        return self.serving and session_id in self._reports

    def is_done(self, session_id: str) -> bool:
        """Whether a tracked session has exhausted its frame budget."""
        if not self.has_session(session_id):
            raise ValidationError(f"unknown session '{session_id}'")
        return self._scheduler.is_done(session_id)

    def pause_session(self, session_id: str) -> None:
        """Exclude a session from tick dispatch until resumed.

        Gateway backpressure: a client that stops draining its send
        queue pauses *its* session — the stream simply stops advancing
        (no frames rendered, no queue growth) while every other session
        keeps ticking.  The session keeps its worker, its admission
        slot, and its crash-recovery registration.
        """
        if not self.has_session(session_id):
            raise ValidationError(f"unknown session '{session_id}'")
        self._scheduler.pause_session(session_id)

    def resume_session(self, session_id: str) -> None:
        """Re-enable tick dispatch for a paused session (idempotent)."""
        if not self.has_session(session_id):
            raise ValidationError(f"unknown session '{session_id}'")
        self._scheduler.resume_session(session_id)

    @property
    def paused_sessions(self) -> list[str]:
        """Session ids currently paused by flow control (sorted)."""
        return self._scheduler.paused if self.serving else []

    def report_of(self, session_id: str) -> StreamReport:
        """The frames streamed so far for a tracked session."""
        if not self.has_session(session_id):
            raise ValidationError(f"unknown session '{session_id}'")
        return self._reports[session_id]

    # -- serving --------------------------------------------------------
    def serve(self, sessions: list[StreamSession]) -> list[SessionResult]:
        """Stream every session to completion; returns per-session results.

        Frames are dispatched in ticks (one frame per admitted session
        per round), with each worker receiving one task per same-scene
        batch it hosts.  Worker crashes are recovered by respawning the
        worker and replaying session checkpoints; if anything is
        unrecoverable the pool is torn down before the error
        propagates, so no executor outlives a failed serve.

        Implemented over the incremental :meth:`begin` / :meth:`step` /
        :meth:`finish` protocol that open-ended callers (the fleet) use
        directly.
        """
        if self.serving:
            # Raise *before* the cleanup guard below: an already-open
            # incremental serve (and its sessions' live state) must
            # survive a mistaken serve() call untouched.
            raise ValidationError(
                "a serve is already open on this server; finish() it "
                "before calling serve()"
            )
        self.worker_busy_seconds = {}
        if not sessions:
            return []
        try:
            self.begin(sessions)
            # Progress is guaranteed (every tick either renders a frame
            # or retires a session), so this cap only catches scheduler
            # bugs.
            max_ticks = (
                sum(s.frame_budget for s in sessions)
                + len(sessions)
                + self.max_respawns
                + 4
            )
            for _ in range(max_ticks):
                if self._scheduler.tick_assignments():
                    self.step()
                else:
                    break
            else:
                raise SimulationError(
                    "stream serve did not drain within its tick budget"
                )
            return self.finish()
        except BaseException:
            # Executor leak guard: a serve that raises must not leave
            # worker processes behind (the pool restarts lazily on the
            # next serve).
            self._scheduler = None
            self.close()
            raise

    # -- tick execution -------------------------------------------------
    def _run_tick(
        self, assignments: dict[int, list[StreamSession]]
    ) -> list[TickResult]:
        """Dispatch one tick and gather results, recovering crashes."""
        shipped = self._shipped
        checkpoints = self._checkpoints
        pending: list[tuple[int, list[StreamSession], Future | TickResult]] = []
        failed: dict[int, list[list[StreamSession]]] = {}
        for w in sorted(assignments):
            for batch in self._scene_batches(assignments[w]):
                payload: list[StreamSession | str] = [
                    s if s.session_id not in shipped else s.session_id
                    for s in batch
                ]
                for s in batch:
                    shipped.add(s.session_id)
                    self.dispatch_counts[s.session_id] += 1
                try:
                    pending.append((w, batch, self._dispatch(w, payload)))
                except BrokenProcessPool:
                    # A pool already marked broken rejects the submit
                    # itself; queue the batch for post-recovery retry.
                    failed.setdefault(w, []).append(batch)

        results: list[TickResult] = []
        for w, batch, item in pending:
            try:
                result = item.result() if isinstance(item, Future) else item
            except BrokenProcessPool:
                failed.setdefault(w, []).append(batch)
                continue
            # Fold checkpoints in immediately: if a *later* batch of the
            # same worker crashed, recovery must replay this batch's
            # sessions from their post-tick state, not last tick's.
            checkpoints.update(result.checkpoints)
            results.append(result)
        for w, batches in sorted(failed.items()):
            self._recover_worker(w)
            for batch in batches:
                # Post-restore every session is registered on the new
                # worker; ids suffice and the lost frames re-render
                # deterministically from the replayed checkpoints.  A
                # repeat crash during the retry re-enters recovery,
                # bounded by the respawn budget.
                while True:
                    for s in batch:
                        self.dispatch_counts[s.session_id] += 1
                    try:
                        retry = self._dispatch(w, [s.session_id for s in batch])
                        result = (
                            retry.result() if isinstance(retry, Future) else retry
                        )
                        break
                    except BrokenProcessPool:
                        self._recover_worker(w)
                checkpoints.update(result.checkpoints)
                results.append(result)
        return results

    def _dispatch(self, worker: int, batch: list[StreamSession | str]):
        if self.local:
            return self._local_states[worker].render_tick(batch)
        return self._executors[worker].submit(_subprocess_render_tick, batch)

    # -- fault handling -------------------------------------------------
    def _inject_faults(
        self, tick: int, assignments: dict[int, list[StreamSession]]
    ) -> None:
        if self.fault_injector is None:
            return
        for w in sorted(assignments):
            if not self.fault_injector(tick, w):
                continue
            if self.local:
                # Deterministic modes cannot lose a process; losing the
                # whole worker state is the same failure, recovered
                # eagerly (process workers go through BrokenProcessPool
                # detection instead).
                self._recover_worker(w)
            else:
                self._executors[w].submit(_subprocess_crash)

    def _recover_worker(self, worker: int) -> None:
        """Respawn a dead worker and replay its sessions' checkpoints."""
        self.recoveries += 1
        if self.recoveries > self.max_respawns:
            raise SimulationError(
                f"worker {worker} crashed beyond the respawn budget "
                f"({self.max_respawns}); giving up"
            )
        if self.local:
            # A crashed worker loses its worker-tier cache along with
            # everything else; the node tier survives on the server, so
            # replayed sessions re-warm from it.
            self._local_states[worker] = _WorkerState(
                bundle_cache_size=self.bundle_cache_size,
                content=self.content_cache,
                content_parent=self._node_tier,
                bundle_builder=self._bundle_builder,
                models=self.models,
            )
        else:
            self._executors[worker].shutdown(wait=False)
            self._executors[worker] = ProcessPoolExecutor(max_workers=1)
        payload = [
            (session, self._checkpoints.get(session.session_id))
            for session in self._scheduler.active_on(worker)
        ]
        if payload:
            self._dispatch_restore(worker, payload)
            self._shipped.update(session.session_id for session, _ in payload)

    def _apply_migrations(self) -> None:
        for migration in self._scheduler.rebalance():
            session = self._scheduler.session(migration.session_id)
            ckpt = self._checkpoints.get(migration.session_id)
            self._dispatch_drop(migration.src, [migration.session_id])
            self._dispatch_restore(migration.dst, [(session, ckpt)])
            self._shipped.add(migration.session_id)
            self.migrations.append(migration)

    def _dispatch_restore(
        self,
        worker: int,
        payload: list[tuple[StreamSession, SessionCheckpoint | None]],
    ) -> None:
        if self.local:
            self._local_states[worker].restore_sessions(payload)
            return
        self._executors[worker].submit(_subprocess_restore, payload).result()

    def _dispatch_drop(self, worker: int, session_ids: list[str]) -> None:
        if self.local:
            self._local_states[worker].drop_sessions(session_ids)
            return
        self._executors[worker].submit(_subprocess_drop, session_ids).result()

    def _reset_workers(self) -> None:
        if self.local:
            for state in self._local_states:
                state.reset(self.bundle_cache_size)
            return
        for executor in self._executors:
            executor.submit(
                _subprocess_reset,
                self.bundle_cache_size,
                self.content_cache,
                self.models,
            ).result()

    # -- convenience ----------------------------------------------------
    def serve_timed(
        self, sessions: list[StreamSession]
    ) -> tuple[list[SessionResult], ServeSummary]:
        """:meth:`serve`, plus the aggregate :class:`ServeSummary`."""
        t0 = time.perf_counter()
        results = self.serve(sessions)
        wall = time.perf_counter() - t0
        return results, ServeSummary.from_results(
            results,
            self.workers,
            wall,
            recoveries=self.recoveries,
            migrations=len(self.migrations),
            busy_seconds=self.worker_busy_seconds or None,
        )

    def warm_up(self) -> float:
        """Spin up every worker process (imports + allocator warmup).

        Returns the wall seconds spent; benchmarks call this before
        timing so pool start-up is not billed to throughput.
        """
        t0 = time.perf_counter()
        self._ensure_pool()
        if not self.local:
            for executor in self._executors:
                executor.submit(_subprocess_reset).result()
        return time.perf_counter() - t0
