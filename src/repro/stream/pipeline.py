"""The per-session frame-sequence pipeline.

A :class:`FrameStream` renders a :class:`~repro.stream.trajectory.
CameraTrajectory` over one catalog scene (static, dynamic or avatar)
through a :class:`~repro.core.gbu.GBUDevice`, *persisting* cross-frame
state between frames:

* **Warm tile binning** — the :class:`~repro.stream.binning.WarmBinner`
  carries (tile, Gaussian) instances across frames and regenerates
  only Gaussians whose tile rectangle moved (Step 2 amortized over the
  stream);
* **Temporal reuse cache** — the device renders with a
  :class:`~repro.core.reuse_cache.TemporalReuseSimulator`, so feature
  lines stay resident across frames and the per-frame / cumulative
  hit rates quantify inter-frame reuse (frame 0 doubles as the
  single-frame cold baseline).

Timing model: each frame's simulated latency is the steady-state
GPU/GBU pipeline of :class:`~repro.core.pipeline.PipelinedFrame`.
The GPU side is Step 1 plus a depth-sort-only Step 2 — binning is
served incrementally from the warm state, mirroring how the D&B
engine removes the duplication kernels in the ``gbu_dnb``
configuration — and the GBU side is the device's Step-3 roofline.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass, field, replace
from typing import Callable, Protocol, runtime_checkable

import numpy as np

from repro.analysis.endtoend import SYNC_SECONDS
from repro.core.gbu import GBUConfig, GBUDevice, GBUReport
from repro.core.pipeline import PipelinedFrame
from repro.core.reuse_cache import FrameCacheSample
from repro.errors import DeviceBusyError, ValidationError
from repro.gaussians import project
from repro.gpu import FrameWorkload, GPUTimingModel, ScaleFactors
from repro.render.approx import default_policy, tolerance_for_rung, use_approx_policy
from repro.scenes import BundleCache, SceneBundle, SceneSpec, build_scene
from repro.scenes.catalog import CATALOG
from repro.stream.binning import BinningStats, WarmBinner, camera_fingerprint
from repro.stream.content_cache import CachedFrame, SessionContentView, render_mode_key
from repro.stream.qos import QoSRecord, QualityController
from repro.stream.trajectory import CameraTrajectory


#: Frame-pipeline modes: ``"exact"`` renders every frame
#: (:class:`FrameStream`); ``"digest"`` advances sessions from
#: calibrated workload models
#: (:class:`~repro.stream.digest.DigestFrameStream`).
PIPELINES = ("exact", "digest")


@runtime_checkable
class FramePipeline(Protocol):
    """The per-session surface everything above the renderer talks to.

    Implemented by the exact :class:`FrameStream` and the digest
    :class:`~repro.stream.digest.DigestFrameStream`.  The server,
    scheduler, QoS controller, checkpoint capture/restore and the
    fleet drive sessions exclusively through this protocol, so a
    session's pipeline mode is invisible above the frame layer.

    Beyond the members below, implementations expose ``spec``,
    ``trajectory``, ``detail``, ``controller``, ``content`` and a
    ``cache_state`` whose ``export_state()``/``import_state()`` round-
    trips a :class:`~repro.core.reuse_cache.TemporalCacheState` — the
    contract :func:`~repro.stream.checkpoint.capture_checkpoint`
    snapshots.
    """

    @property
    def frames_rendered(self) -> int: ...

    @property
    def active_detail(self) -> float: ...

    @property
    def frame_key(self) -> tuple | None: ...

    def load_detail(self, detail: float) -> None: ...

    def reset(self) -> None: ...

    def seek(self, frame: int) -> None: ...

    def render_next(self) -> "FrameRecord": ...

    def run(self, n_frames: int | None = None) -> "StreamReport": ...


def streaming_config(
    backend: str | None = "vectorized",
    cache_policy: str = "reuse_distance",
    fp16: bool = True,
    use_cache: bool = True,
) -> GBUConfig:
    """The GBU configuration used for stream serving.

    The D&B engine is off because Rendering Step 2 is served from the
    session's warm binning state; the reuse cache runs in its temporal
    mode.  The vectorized backend is the serving default (pixel-exact,
    ~5x faster combined than the reference loops — see
    ``BENCH_render_speed.json``).
    """
    return GBUConfig(
        use_dnb=False,
        use_cache=use_cache,
        cache_policy=cache_policy,
        fp16=fp16,
        backend=backend,
    )


@dataclass(frozen=True)
class FrameRecord:
    """Everything one streamed frame produced.

    Attributes
    ----------
    frame:
        0-based frame index within the stream.
    n_visible / n_instances:
        Culled Gaussian count and (tile, Gaussian) pair count.
    sim_seconds:
        Paper-scale steady-state frame latency (pipelined GPU + GBU).
    wall_seconds:
        Host wall-clock spent producing the frame (throughput metric).
    cache:
        The warm (cross-frame) cache sample for this frame.
    binning:
        What the warm binner reused vs. regenerated.
    image:
        The rendered frame (``None`` unless images are kept).
    detail:
        Absolute detail the frame rendered at (equals the session's
        nominal detail unless a QoS controller adapted it).
    qos:
        Per-frame deadline audit record (``None`` without QoS).
    shards:
        Parallel tile shards the frame rendered with (1 unless the
        controller escalated the session).
    served_from:
        Content-cache tier that served this frame ("session",
        "worker", "node" or "fleet"), or ``None`` when the frame was
        actually rendered (including every frame of a stream without a
        content cache).
    """

    frame: int
    n_visible: int
    n_instances: int
    sim_seconds: float
    # Host timing is telemetry: two frames with identical simulated
    # output are equal, regardless of how loaded the host was.
    wall_seconds: float = field(compare=False)
    cache: FrameCacheSample
    binning: BinningStats
    image: np.ndarray | None = None
    detail: float = 1.0
    qos: QoSRecord | None = None
    shards: int = 1
    served_from: str | None = None

    @property
    def sim_fps(self) -> float:
        return 1.0 / self.sim_seconds

    @property
    def hit_rate(self) -> float:
        return self.cache.report.hit_rate


@dataclass
class StreamReport:
    """Summary of one rendered stream (one session's frames)."""

    scene: str
    trajectory: str
    frames: list[FrameRecord] = field(default_factory=list)

    @property
    def n_frames(self) -> int:
        return len(self.frames)

    @property
    def cold_hit_rate(self) -> float:
        """Frame 0's hit rate — the single-frame cold-cache baseline."""
        return self.frames[0].hit_rate if self.frames else 0.0

    @property
    def warm_hit_rate(self) -> float:
        """Cumulative hit rate over the whole stream (warm cache)."""
        return self.frames[-1].cache.cumulative_hit_rate if self.frames else 0.0

    @property
    def binning_reuse(self) -> float:
        """Mean instance-reuse fraction over the warm frames (1..n)."""
        warm = self.frames[1:]
        if not warm:
            return 0.0
        return float(np.mean([f.binning.reuse_fraction for f in warm]))

    @property
    def wall_seconds(self) -> float:
        return float(sum(f.wall_seconds for f in self.frames))

    @property
    def wall_fps(self) -> float:
        """Host frames/sec actually sustained (throughput)."""
        total = self.wall_seconds
        return len(self.frames) / total if total > 0 else 0.0

    @property
    def mean_sim_fps(self) -> float:
        if not self.frames:
            return 0.0
        return float(np.mean([f.sim_fps for f in self.frames]))

    @property
    def mean_detail(self) -> float:
        """Mean absolute detail delivered across the stream."""
        if not self.frames:
            return 0.0
        return float(np.mean([f.detail for f in self.frames]))

    @property
    def detail_trace(self) -> list[float]:
        """Per-frame delivered detail (the QoS replay invariant)."""
        return [f.detail for f in self.frames]

    def deadline_miss_rate(self, deadline_seconds: float | None = None) -> float:
        """Fraction of frames that missed their deadline.

        With no argument the per-frame :class:`~repro.stream.qos.
        QoSRecord` verdicts are used (0.0 when the stream ran without
        QoS); passing ``deadline_seconds`` judges the recorded
        ``sim_seconds`` against an arbitrary budget — how fixed-detail
        baselines are scored against the same deadline.
        """
        if not self.frames:
            return 0.0
        if deadline_seconds is None:
            missed = sum(
                1 for f in self.frames if f.qos is not None and not f.qos.met
            )
        else:
            missed = sum(
                1 for f in self.frames if f.sim_seconds > deadline_seconds
            )
        return missed / len(self.frames)

    def to_dict(self) -> dict:
        """JSON-serializable summary (per-frame and aggregate)."""
        return {
            "scene": self.scene,
            "trajectory": self.trajectory,
            "n_frames": self.n_frames,
            "cold_hit_rate": self.cold_hit_rate,
            "warm_hit_rate": self.warm_hit_rate,
            "binning_reuse": self.binning_reuse,
            "wall_fps": self.wall_fps,
            "mean_sim_fps": self.mean_sim_fps,
            "mean_detail": self.mean_detail,
            "deadline_miss_rate": self.deadline_miss_rate(),
            "frames": [
                {
                    "frame": f.frame,
                    "n_visible": f.n_visible,
                    "n_instances": f.n_instances,
                    "sim_fps": f.sim_fps,
                    "hit_rate": f.hit_rate,
                    "cumulative_hit_rate": f.cache.cumulative_hit_rate,
                    "carried_hit_rate": f.cache.carried_hit_rate,
                    "binning_reuse": f.binning.reuse_fraction,
                    "full_reuse": f.binning.full_reuse,
                    "detail": f.detail,
                    # Only emitted when the session actually sharded, so
                    # serve summaries of unsharded runs (including the
                    # golden fixtures) keep their exact bytes.
                    **({"shards": f.shards} if f.shards > 1 else {}),
                    # Same contract: only dedup-served frames carry the
                    # tier, so cache-less runs keep their exact bytes.
                    **(
                        {"served_from": f.served_from}
                        if f.served_from is not None
                        else {}
                    ),
                    **(
                        {
                            "deadline_met": f.qos.met,
                            "margin_seconds": f.qos.margin_seconds,
                        }
                        if f.qos is not None
                        else {}
                    ),
                }
                for f in self.frames
            ],
        }


class FrameStream:
    """Render a camera trajectory over one scene with persistent state.

    Parameters
    ----------
    scene:
        Catalog scene (name, spec, or a pre-built bundle via
        ``bundle=``).
    trajectory:
        The camera path; its resolution defines the frame size.
    config:
        GBU feature configuration; defaults to :func:`streaming_config`.
        The D&B engine must be off — Step 2 is owned by the warm
        binner.
    detail:
        Scene detail multiplier (tests use < 1).
    keep_images:
        Retain each frame's image on its :class:`FrameRecord`.
    device:
        Share an existing :class:`GBUDevice` (the server gives every
        worker one device multiplexed across its sessions); the device
        is driven through the Listing-1 busy/handshake protocol, so a
        frame left in flight by another session raises — and is
        drained via — :class:`~repro.errors.DeviceBusyError`.
    controller:
        Optional per-session :class:`~repro.stream.qos.
        QualityController`.  When given, every frame renders at the
        controller's current detail (scene bundle *and* resolution
        follow the detail ladder) and the frame's paper-scale latency
        is fed back into the loop; each :class:`FrameRecord` then
        carries a :class:`~repro.stream.qos.QoSRecord`.
    bundle_provider:
        ``(scene, detail) -> SceneBundle`` used to fetch bundles when
        the controller switches detail.  The server passes its
        per-worker bounded :class:`~repro.scenes.BundleCache`; a
        standalone adaptive stream falls back to a private cache.
    content:
        Optional :class:`~repro.stream.content_cache.
        SessionContentView` — this session's window onto the tiered
        content-addressed render cache.  When given, each frame's
        camera is canonicalized (pose quantization), the frame's
        content address is looked up before rendering, and a hit
        short-circuits the functional render while still advancing
        timing, QoS and temporal cache state exactly as a fresh render
        would (see :meth:`render_next`).
    """

    def __init__(
        self,
        scene: SceneSpec | str,
        trajectory: CameraTrajectory,
        config: GBUConfig | None = None,
        detail: float = 1.0,
        keep_images: bool = False,
        bundle: SceneBundle | None = None,
        device: GBUDevice | None = None,
        controller: QualityController | None = None,
        bundle_provider: Callable[..., SceneBundle] | None = None,
        content: SessionContentView | None = None,
    ) -> None:
        spec = CATALOG[scene] if isinstance(scene, str) else scene
        if device is not None and config is not None and device.config != config:
            raise ValidationError("pass either a device or a config, not both")
        if bundle is not None and bundle.spec != spec:
            raise ValidationError(
                f"bundle was built for scene '{bundle.spec.name}', "
                f"stream requested '{spec.name}'"
            )
        config = (
            device.config
            if device is not None
            else (streaming_config() if config is None else config)
        )
        if config.use_dnb:
            raise ValidationError(
                "FrameStream owns Rendering Step 2 (warm binning); "
                "use a config with use_dnb=False (see streaming_config())"
            )
        if controller is not None and controller.nominal_detail != detail:
            raise ValidationError(
                f"controller nominal detail {controller.nominal_detail} "
                f"does not match the stream's detail {detail}"
            )
        self.spec = spec
        self.trajectory = trajectory
        self.detail = detail
        self.bundle = bundle if bundle is not None else build_scene(spec, detail=detail)
        self.device = device if device is not None else GBUDevice(config=config)
        self.keep_images = keep_images
        self.scales = ScaleFactors.for_scene(spec)
        self.controller = controller
        if bundle_provider is None and controller is not None:
            cache = BundleCache()
            cache.put(spec, detail, self.bundle)
            bundle_provider = cache.get
        self._bundle_provider = bundle_provider
        self.content = content
        self._gpu_model = GPUTimingModel()
        self.binner = WarmBinner(self.bundle.n_source_gaussians)
        self.cache_state = self.device.new_cache_state()
        #: Content-cache key sequence (one entry per frame when a
        #: content cache is attached); the digest pipeline records the
        #: same trace, and fidelity tests assert the two are identical.
        self.key_trace: list = []
        self._active_detail = detail
        self._next_frame = 0

    @property
    def frames_rendered(self) -> int:
        return self._next_frame

    @property
    def active_detail(self) -> float:
        """Absolute detail of the currently-loaded scene bundle."""
        return self._active_detail

    def load_detail(self, detail: float) -> None:
        """Swap in the bundle for ``detail`` (cold binner, new universe).

        The temporal cache is *not* touched here: the adaptive render
        path flushes the resident set around a live detail switch,
        while checkpoint restore imports the exported state instead.
        """
        if self._bundle_provider is None:
            raise ValidationError(
                "stream has no bundle provider; detail cannot change"
            )
        self.bundle = self._bundle_provider(self.spec, detail)
        self.binner = WarmBinner(self.bundle.n_source_gaussians)
        self._active_detail = detail

    @property
    def frame_key(self) -> tuple | None:
        """The warm binner's last frame key (``None`` before frame 0)."""
        return self.binner.frame_key

    def reset(self) -> None:
        """Drop all cross-frame state and restart at frame 0."""
        if self._active_detail != self.detail:
            self.load_detail(self.detail)
        if self.controller is not None:
            self.controller.reset()
        self.binner.reset()
        self.cache_state.reset()
        self.key_trace.clear()
        self._next_frame = 0

    def seek(self, frame: int) -> None:
        """Move the stream cursor so ``render_next`` produces ``frame``.

        Used by checkpoint restore (``repro.stream.checkpoint``) after
        the cross-frame cache state has been imported; it does not
        touch the binner or cache state itself.
        """
        if frame < 0:
            raise ValidationError("cannot seek to a negative frame")
        self._next_frame = int(frame)

    def render_next(self) -> FrameRecord:
        """Render the next frame of the trajectory, advancing state.

        With a QoS controller, the frame renders at the controller's
        current detail: a rung change swaps the scene bundle (through
        the bundle provider), restarts the warm binner on the new
        Gaussian universe, flushes the temporal cache's resident lines
        (features of one level of detail do not serve another — the
        cumulative counters keep accumulating), and rescales the
        trajectory camera to the rung's evaluation resolution.  The
        frame's simulated latency is then fed back into the loop.
        """
        k = self._next_frame
        t0 = time.perf_counter()
        detail = self._active_detail
        if self.controller is not None:
            detail = self.controller.next_detail
            if detail != self._active_detail:
                self.load_detail(detail)
                self.cache_state.flush_resident()
        camera = self.trajectory.camera_at(k)
        if self.controller is not None:
            width, height = self.spec.eval_resolution(detail)
            if (camera.width, camera.height) != (width, height):
                camera = camera.with_resolution(width, height)
        shards = 1 if self.controller is None else self.controller.next_shards
        key = None
        if self.content is not None:
            # Canonical-pose rendering: the snapped camera is what gets
            # rendered, so every viewer in the quantization cell sees
            # the byte-identical product whether it hit or rendered.
            camera = self.content.canonical_camera(camera)
            key = self.content.frame_key(
                self.spec,
                camera,
                self.bundle.frame_clock(k),
                detail,
                self._render_mode(shards, detail),
            )
            self.key_trace.append(key)
            hit = self.content.lookup(key)
            if hit is not None:
                return self._serve_cached(k, *hit, detail=detail, shards=shards, t0=t0)
        cloud, extra_flops, source_ids = self.bundle.frame_cloud_indexed(k)
        projected = project(cloud, camera)
        lists, binning = self.binner.build(
            projected,
            frame_key=(camera_fingerprint(camera), self.bundle.frame_clock(k)),
            source_ids=source_ids,
        )
        report = self._render_via_device(
            projected, lists, source_ids, shards=shards, detail=detail
        )
        sim_seconds = self._frame_seconds(report, len(projected), extra_flops)
        if key is not None:
            self.content.insert(
                CachedFrame(
                    key=key,
                    image=report.image,
                    trace=report.feature_trace,
                    tiles=report.feature_tiles,
                    compute_seconds=report.compute_seconds,
                    n_visible=len(projected),
                    n_instances=lists.n_instances,
                    extra_flops=extra_flops,
                )
            )
        qos = None
        if self.controller is not None:
            qos = self.controller.observe(
                frame=k, detail=detail, sim_seconds=sim_seconds
            )
        wall = time.perf_counter() - t0
        record = FrameRecord(
            frame=k,
            n_visible=len(projected),
            n_instances=lists.n_instances,
            sim_seconds=sim_seconds,
            wall_seconds=wall,
            cache=report.cache_sample,
            binning=binning,
            image=report.image if self.keep_images else None,
            detail=detail,
            qos=qos,
            shards=shards,
        )
        self._next_frame = k + 1
        return record

    def _render_mode(self, shards: int, detail: float) -> tuple:
        """The render-mode component of this frame's content address.

        Mirrors exactly what :meth:`_render_via_device` is about to do:
        the resolved backend, the effective approx tolerance (the QoS
        rung's tolerance under a controller, the process default
        otherwise, ``None`` for exact backends), and every device knob
        that changes pixels or compute cycles.
        """
        backend = self.device.resolved_backend_name()
        tolerance = None
        if backend == "approx":
            if self.controller is not None:
                tolerance = float(tolerance_for_rung(detail / self.detail))
            else:
                tolerance = float(default_policy().tolerance)
        config = self.device.config
        return render_mode_key(
            backend,
            tolerance,
            config.fp16,
            shards,
            config.interleaved_rows,
            config.cross_tile_overlap,
        )

    def _serve_cached(
        self,
        k: int,
        cached: CachedFrame,
        level: str,
        detail: float,
        shards: int,
        t0: float,
    ) -> FrameRecord:
        """Serve frame ``k`` from the content cache.

        Only the functional render is skipped.  The cached feature
        trace replays through *this session's* temporal cache state and
        the step-3 roofline recomputes from the replayed counters plus
        the cached compute seconds — bit-identical arithmetic to a
        fresh render, so ``sim_seconds``, QoS verdicts and checkpoint
        state cannot tell a dedup-served frame from a rendered one.
        The warm binner is left untouched (it regenerates whatever
        moved on the next actual render; binning stats are reported as
        full reuse, mirroring that no instance was regenerated).
        """
        cache_sample = self.cache_state.observe_frame(cached.trace, cached.tiles)
        height, width = cached.image.shape[0], cached.image.shape[1]
        step3_s = self.device.replay_step3_seconds(
            cache_sample.report, height, width, self.scales, cached.compute_seconds
        )
        sim_seconds = self._frame_seconds_from(
            accesses=cache_sample.report.accesses,
            height=height,
            width=width,
            step3_seconds=step3_s,
            n_visible=cached.n_visible,
            extra_flops=cached.extra_flops,
        )
        qos = None
        if self.controller is not None:
            qos = self.controller.observe(
                frame=k, detail=detail, sim_seconds=sim_seconds
            )
        wall = time.perf_counter() - t0
        record = FrameRecord(
            frame=k,
            n_visible=cached.n_visible,
            n_instances=cached.n_instances,
            sim_seconds=sim_seconds,
            wall_seconds=wall,
            cache=cache_sample,
            binning=BinningStats(
                total_instances=cached.n_instances,
                reused_instances=cached.n_instances,
                generated_instances=0,
                full_reuse=True,
            ),
            image=cached.image if self.keep_images else None,
            detail=detail,
            qos=qos,
            shards=shards,
            served_from=level,
        )
        self._next_frame = k + 1
        return record

    def _render_via_device(
        self, projected, lists, source_ids, shards: int = 1,
        detail: float | None = None,
    ) -> GBUReport:
        """Issue the frame through the Listing-1 device protocol.

        A device shared across a worker's sessions may still hold a
        frame in flight; :class:`~repro.errors.DeviceBusyError` is
        honored by draining the pending frame and re-issuing.

        ``shards`` reconfigures the (per-worker, shared) device's tile
        sharding for this frame only — sessions multiplexed onto one
        device each carry their own controller-chosen shard count.
        With the ``approx`` backend under QoS control, the frame also
        renders under the rung's tolerance
        (:func:`~repro.render.approx.tolerance_for_rung`), so dropping
        a rung makes the rung itself cheaper to render.
        """
        width, height = projected.image_size
        frame_buffer = np.empty((height, width, 3), dtype=np.float64)
        kwargs = dict(
            scales=self.scales,
            cache_state=self.cache_state,
            feature_ids=source_ids[projected.source_index],
        )
        if shards != self.device.config.shards:
            self.device.config = replace(self.device.config, shards=shards)
        ctx = nullcontext()
        if (
            self.controller is not None
            and detail is not None
            and self.device.resolved_backend_name() == "approx"
        ):
            ctx = use_approx_policy(tolerance_for_rung(detail / self.detail))
        with ctx:
            try:
                self.device.GBU_render_image(
                    height, width, projected, lists, frame_buffer, **kwargs
                )
            except DeviceBusyError:
                self.device.GBU_check_status(blocking=True)
                self.device.GBU_render_image(
                    height, width, projected, lists, frame_buffer, **kwargs
                )
            self.device.GBU_check_status(blocking=True)
        return self.device.last_report

    def run(self, n_frames: int | None = None) -> StreamReport:
        """Render ``n_frames`` (default: the whole trajectory)."""
        n = self.trajectory.n_frames if n_frames is None else n_frames
        if n <= 0:
            raise ValidationError("stream needs at least one frame")
        report = StreamReport(
            scene=self.spec.name, trajectory=self.trajectory.kind
        )
        for _ in range(n):
            report.frames.append(self.render_next())
        return report

    def _frame_seconds(
        self, report: GBUReport, n_visible: int, extra_flops: float
    ) -> float:
        """Steady-state paper-scale frame latency for one stream frame.

        Only the Step-1/Step-2 counters of the workload are consumed
        here; the Step-3 side comes from the device report.
        """
        return self._frame_seconds_from(
            accesses=report.cache.accesses,
            height=report.image.shape[0],
            width=report.image.shape[1],
            step3_seconds=report.step3_seconds,
            n_visible=n_visible,
            extra_flops=extra_flops,
        )

    def _frame_seconds_from(
        self,
        accesses: int,
        height: int,
        width: int,
        step3_seconds: float,
        n_visible: int,
        extra_flops: float,
    ) -> float:
        """The frame-latency arithmetic on its primitive inputs.

        Shared between the render path (counters read off the device
        report) and the content-cache hit path (counters replayed from
        the cached frame), so both produce bit-identical latencies for
        identical counters.
        """
        workload = FrameWorkload(
            n_gaussians=n_visible * self.scales.gaussian,
            step1_extra_flops_per_gaussian=extra_flops,
            n_instances=accesses * self.scales.instance,
            pfs_fragments=0.0,
            irss_fragments=0.0,
            irss_segments=0.0,
            irss_serial_slots=0.0,
            pixels=height * width * self.scales.pixel,
            feature_bytes=0.0,
        )
        step1_s = self._gpu_model.step1_seconds(workload)
        step2_s = self._gpu_model.step2_seconds(
            workload, keys=workload.n_gaussians, depth_sort_only=True
        )
        pipe = PipelinedFrame(
            gpu_seconds=step1_s + step2_s,
            gbu_seconds=step3_seconds,
            sync_seconds=SYNC_SECONDS,
        )
        return pipe.frame_seconds
