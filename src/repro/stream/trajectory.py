"""Deterministic camera trajectories for frame-sequence streaming.

A :class:`CameraTrajectory` is a finite, precomputed sequence of
:class:`repro.gaussians.camera.Camera` poses — the client-side input
to a stream session.  Three motion archetypes cover the AR/VR viewing
patterns the paper targets, plus a degenerate one for testing:

* ``orbit`` — a circular pan around the scene (the catalog's
  evaluation-camera placement swept over an arc);
* ``dolly`` — motion along the eye-target ray (the Sec. VI-F
  camera-distance stress, animated);
* ``head_jitter`` — a seeded random walk around a base pose modeling
  head-tracked micro-motion, the workload where cross-frame reuse
  pays off most;
* ``frozen`` — the same pose every frame (upper bound for reuse;
  used by the monotonicity tests).

All generators are deterministic: the same arguments (and seed, for
``head_jitter``) produce bitwise-identical camera sequences.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ValidationError
from repro.gaussians.camera import Camera, orbit_cameras
from repro.scenes.catalog import SceneSpec


@dataclass(frozen=True)
class CameraTrajectory:
    """A finite camera path: ``kind`` plus the precomputed poses."""

    kind: str
    cameras: tuple[Camera, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.cameras:
            raise ValidationError("trajectory needs at least one camera")

    def __len__(self) -> int:
        return len(self.cameras)

    def __iter__(self):
        return iter(self.cameras)

    @property
    def n_frames(self) -> int:
        return len(self.cameras)

    def camera_at(self, frame: int) -> Camera:
        """The pose for frame ``frame`` (wrapping past the end)."""
        return self.cameras[frame % len(self.cameras)]

    # ------------------------------------------------------------------
    # Generators
    # ------------------------------------------------------------------
    @staticmethod
    def orbit(
        n_frames: int,
        radius: float = 3.0,
        height: float = 0.5,
        target: np.ndarray = (0.0, 0.0, 0.0),
        width: int = 256,
        height_px: int = 256,
        fov_y_deg: float = 50.0,
        arc_deg: float = 360.0,
        phase_deg: float = 0.0,
    ) -> "CameraTrajectory":
        """Sweep ``arc_deg`` of a circular orbit in ``n_frames`` steps.

        A full 360-degree arc delegates to
        :func:`repro.gaussians.camera.orbit_cameras` (closed loop, no
        duplicated endpoint); partial arcs place the frames evenly
        across ``[phase, phase + arc]``.
        """
        if n_frames <= 0:
            raise ValidationError("trajectory needs at least one frame")
        phase = np.deg2rad(phase_deg)
        if abs(arc_deg - 360.0) < 1e-9:
            cams = orbit_cameras(
                n_frames,
                radius,
                height=height,
                target=target,
                width=width,
                height_px=height_px,
                fov_y_deg=fov_y_deg,
                phase=phase,
            )
            return CameraTrajectory(kind="orbit", cameras=tuple(cams))
        target = np.asarray(target, dtype=np.float64)
        arc = np.deg2rad(arc_deg)
        cams = []
        for k in range(n_frames):
            t = k / max(n_frames - 1, 1)
            angle = phase + arc * t
            eye = target + np.array(
                [radius * np.cos(angle), height, radius * np.sin(angle)]
            )
            cams.append(
                Camera.look_at(
                    eye,
                    target,
                    width=width,
                    height=height_px,
                    fov_y_deg=fov_y_deg,
                )
            )
        return CameraTrajectory(kind="orbit", cameras=tuple(cams))

    @staticmethod
    def dolly(
        base: Camera,
        n_frames: int,
        factor_range: tuple[float, float] = (1.0, 1.8),
        target: np.ndarray = (0.0, 0.0, 0.0),
    ) -> "CameraTrajectory":
        """Move the camera along the eye-target ray.

        Frame ``k`` uses :meth:`Camera.dollied` with a factor
        interpolated geometrically across ``factor_range`` (constant
        relative step per frame, matching how perceived scale changes).
        """
        if n_frames <= 0:
            raise ValidationError("trajectory needs at least one frame")
        lo, hi = factor_range
        if lo <= 0 or hi <= 0:
            raise ValidationError("dolly factors must be positive")
        factors = np.geomspace(lo, hi, n_frames)
        target = np.asarray(target, dtype=np.float64)
        cams = tuple(base.dollied(float(f), target=target) for f in factors)
        return CameraTrajectory(kind="dolly", cameras=cams)

    @staticmethod
    def head_jitter(
        base: Camera,
        n_frames: int,
        seed: int = 0,
        amplitude: float = 0.02,
        target: np.ndarray = (0.0, 0.0, 0.0),
        smoothing: float = 0.7,
    ) -> "CameraTrajectory":
        """Seeded head-tracked micro-motion around a base pose.

        The eye follows a smoothed (AR(1)) random walk of scale
        ``amplitude`` world units around the base eye position, always
        re-aimed at ``target`` — the small-baseline pose churn of a
        seated AR/VR user.  Deterministic for a fixed seed.
        """
        if n_frames <= 0:
            raise ValidationError("trajectory needs at least one frame")
        if amplitude < 0:
            raise ValidationError("jitter amplitude cannot be negative")
        if not 0.0 <= smoothing < 1.0:
            raise ValidationError("smoothing must be in [0, 1)")
        rng = np.random.default_rng(seed)
        target = np.asarray(target, dtype=np.float64)
        eye0 = base.position
        offset = np.zeros(3)
        cams = []
        for _ in range(n_frames):
            offset = smoothing * offset + amplitude * rng.standard_normal(3)
            cams.append(
                Camera.look_at(
                    eye0 + offset,
                    target,
                    width=base.width,
                    height=base.height,
                    fov_y_deg=float(
                        2.0 * np.rad2deg(np.arctan(0.5 * base.height / base.fy))
                    ),
                )
            )
        return CameraTrajectory(kind="head_jitter", cameras=tuple(cams))

    @staticmethod
    def frozen(base: Camera, n_frames: int) -> "CameraTrajectory":
        """The same pose repeated ``n_frames`` times."""
        if n_frames <= 0:
            raise ValidationError("trajectory needs at least one frame")
        return CameraTrajectory(kind="frozen", cameras=(base,) * n_frames)

    @staticmethod
    def for_scene(
        spec: SceneSpec,
        kind: str = "orbit",
        n_frames: int = 16,
        seed: int = 0,
        detail: float = 1.0,
        phase_deg: float = 0.0,
    ) -> "CameraTrajectory":
        """A trajectory matching a catalog scene's evaluation camera.

        Uses the scene's orbit radius/height/FOV and its detail-scaled
        evaluation resolution (:meth:`SceneSpec.eval_resolution`, the
        same formula :func:`repro.scenes.build_scene` uses) so
        streamed frames are comparable with the single-frame
        experiments on the same scene.
        """
        width, height = spec.eval_resolution(detail)
        base = Camera.look_at(
            eye=spec.eval_eye(),
            target=[0.0, 0.0, 0.0],
            width=width,
            height=height,
            fov_y_deg=spec.camera_fov,
        )
        if kind == "orbit":
            return CameraTrajectory.orbit(
                n_frames,
                radius=spec.camera_radius,
                height=spec.camera_height,
                width=width,
                height_px=height,
                fov_y_deg=spec.camera_fov,
                phase_deg=phase_deg,
            )
        if kind == "dolly":
            return CameraTrajectory.dolly(base, n_frames)
        if kind == "head_jitter":
            return CameraTrajectory.head_jitter(base, n_frames, seed=seed)
        if kind == "frozen":
            return CameraTrajectory.frozen(base, n_frames)
        raise ValidationError(
            f"unknown trajectory kind '{kind}'; "
            "choose from orbit, dolly, head_jitter, frozen"
        )
