"""Warm-started tile binning: carry (tile, Gaussian) instances across
frames.

Rendering Step 2 rebuilds the full (tile, Gaussian) duplication every
frame, yet under head-tracked motion most Gaussians land in exactly
the same tile rectangle as the frame before.  The
:class:`WarmBinner` exploits that: it remembers each source Gaussian's
conservative tile rectangle and the flat instance arrays it generated,
and on the next frame regenerates instances *only* for Gaussians whose
rectangle changed (or that entered/left the view).  Retained and fresh
instances are merged and depth-sorted into ordinary
:class:`~repro.gaussians.sorting.RenderLists`.

Exactness: a Gaussian's instance set is fully determined by its tile
rectangle (the AABB binning enumerates every tile in the rectangle),
so reusing instances of rectangle-stable Gaussians reproduces the cold
binning verbatim.  The final sort uses ``(tile, depth, gaussian)``
keys; since the cold path's stable ``(tile, depth)`` lexsort breaks
ties by the Gaussian-major flat order — ascending Gaussian index — the
explicit third key yields *identical* per-tile lists regardless of the
merge order.  Parity is asserted in ``tests/stream/test_binning.py``.

When the frame key (camera pose + scene clock) is unchanged, the
previous frame's :class:`RenderLists` are returned without any work —
the frozen-camera fast path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.gaussians.camera import Camera
from repro.gaussians.projection import Projected2D
from repro.gaussians.sorting import RenderLists
from repro.gaussians.tiles import (
    TileGrid,
    instances_for_rects,
    split_instances_per_tile,
    tile_rects_of_footprints,
)


def camera_fingerprint(camera: Camera) -> tuple:
    """A hashable, exact identity of a camera pose and intrinsics."""
    return (
        camera.width,
        camera.height,
        camera.fx,
        camera.fy,
        camera.cx,
        camera.cy,
        camera.rotation.tobytes(),
        camera.translation.tobytes(),
    )


@dataclass(frozen=True)
class BinningStats:
    """What one warm binning pass did.

    Attributes
    ----------
    total_instances:
        (tile, Gaussian) pairs in the frame's render lists.
    reused_instances:
        Instances carried over from the previous frame (their
        Gaussian's tile rectangle did not move).
    generated_instances:
        Instances rebuilt this frame (new, moved, or re-entered
        Gaussians).
    full_reuse:
        True when the frame key matched and the previous lists were
        returned untouched (no binning or sorting at all).
    """

    total_instances: int
    reused_instances: int
    generated_instances: int
    full_reuse: bool = False

    @property
    def reuse_fraction(self) -> float:
        """Fraction of instances served from cross-frame state."""
        if self.total_instances == 0:
            return 0.0
        return self.reused_instances / self.total_instances


class WarmBinner:
    """Per-session cross-frame state for Rendering Step 2.

    Parameters
    ----------
    n_source:
        Size of the source Gaussian cloud; cross-frame identity is the
        index into that cloud (``Projected2D.source_index``), which is
        stable for static, temporal and avatar models alike.
    """

    def __init__(self, n_source: int) -> None:
        if n_source < 0:
            raise ValidationError("source cloud size cannot be negative")
        self.n_source = n_source
        self._rects = np.full((n_source, 4), -1, dtype=np.int64)
        self._visible = np.zeros(n_source, dtype=bool)
        self._inst_source = np.zeros((0,), dtype=np.int64)
        self._inst_tile = np.zeros((0,), dtype=np.int64)
        self._frame_key: tuple | None = None
        self._grid_key: tuple | None = None
        self._lists: RenderLists | None = None
        self._last_stats: BinningStats | None = None

    def reset(self) -> None:
        """Drop all cross-frame state (next build is fully cold)."""
        self._rects.fill(-1)
        self._visible.fill(False)
        self._inst_source = np.zeros((0,), dtype=np.int64)
        self._inst_tile = np.zeros((0,), dtype=np.int64)
        self._frame_key = None
        self._grid_key = None
        self._lists = None
        self._last_stats = None

    @property
    def last_stats(self) -> BinningStats | None:
        return self._last_stats

    @property
    def frame_key(self) -> tuple | None:
        """Frame key of the last built frame (``None`` before any)."""
        return self._frame_key

    def build(
        self,
        projected: Projected2D,
        frame_key: tuple | None = None,
        source_ids: np.ndarray | None = None,
    ) -> tuple[RenderLists, BinningStats]:
        """Bin and depth-sort one frame, reusing cross-frame state.

        Parameters
        ----------
        projected:
            The frame's Step-1 output.  ``source_index`` must index the
            same cloud across every call (enforced via ``n_source``).
        frame_key:
            Hashable identity of the frame's inputs — typically
            ``(camera_fingerprint(cam), scene_clock)``.  When it equals
            the previous frame's key, the cached lists are returned
            as-is; pass ``None`` to disable the fast path.
        source_ids:
            Optional mapping from the frame cloud's rows to the stable
            Gaussian universe (see
            :meth:`repro.scenes.SceneBundle.frame_cloud_indexed`); for
            models whose cloud rows already are stable, omit it.
        """
        src = projected.source_index
        if source_ids is not None:
            src = np.asarray(source_ids, dtype=np.int64)[src]
        if len(src) and int(src.max()) >= self.n_source:
            raise ValidationError(
                "projection references a larger cloud than this binner tracks"
            )
        if (
            frame_key is not None
            and self._frame_key is not None
            and frame_key == self._frame_key
            and self._lists is not None
        ):
            n = self._lists.n_instances
            stats = BinningStats(n, n, 0, full_reuse=True)
            self._last_stats = stats
            return self._lists, stats

        width, height = projected.image_size
        grid = TileGrid(width=width, height=height)
        grid_key = (grid.width, grid.height, grid.tile)
        if grid_key != self._grid_key:
            # Resolution switch: tile ids are incomparable; start cold.
            self.reset()
            self._grid_key = grid_key

        rects = np.stack(
            tile_rects_of_footprints(grid, projected.means2d, projected.radii),
            axis=1,
        )
        unchanged = self._visible[src] & np.all(self._rects[src] == rects, axis=1)

        # Retained instances: every instance whose source Gaussian kept
        # its rectangle (and is still visible).
        keep_source = np.zeros(self.n_source, dtype=bool)
        keep_source[src[unchanged]] = True
        retain_mask = keep_source[self._inst_source]
        retained_src = self._inst_source[retain_mask]
        retained_tile = self._inst_tile[retain_mask]

        # Fresh instances for moved / newly visible Gaussians.
        changed_local = np.nonzero(~unchanged)[0]
        fresh_src, fresh_tile = _instances_for(
            grid, rects[changed_local], src[changed_local]
        )

        inst_source = np.concatenate([retained_src, fresh_src])
        inst_tile = np.concatenate([retained_tile, fresh_tile])

        # Update the carried state.
        self._rects[src] = rects
        self._visible.fill(False)
        self._visible[src] = True
        self._inst_source = inst_source
        self._inst_tile = inst_tile
        self._frame_key = frame_key

        # Sort into render lists over per-frame visible indices.
        inv = np.full(self.n_source, -1, dtype=np.int64)
        inv[src] = np.arange(len(src), dtype=np.int64)
        vis_ids = inv[inst_source]
        order = np.lexsort((vis_ids, projected.depths[vis_ids], inst_tile))
        per_tile = split_instances_per_tile(
            grid, inst_tile[order], vis_ids[order]
        )
        lists = RenderLists(grid=grid, per_tile=per_tile)
        stats = BinningStats(
            total_instances=int(inst_source.shape[0]),
            reused_instances=int(retained_src.shape[0]),
            generated_instances=int(fresh_src.shape[0]),
        )
        self._lists = lists
        self._last_stats = stats
        return lists, stats


def _instances_for(
    grid: TileGrid, rects: np.ndarray, source_ids: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Flat (source_id, tile_id) instances for the given tile rects.

    Delegates to the same enumeration core as the cold binning
    (:func:`repro.gaussians.tiles.instances_for_rects`), which is what
    guarantees warm/cold parity, then remaps local owners to stable
    source ids.
    """
    if rects.shape[0] == 0:
        empty = np.zeros((0,), dtype=np.int64)
        return empty, empty.copy()
    owner, tile_ids = instances_for_rects(
        grid, rects[:, 0], rects[:, 1], rects[:, 2], rects[:, 3]
    )
    return source_ids[owner], tile_ids
